"""Compatibility tests for the unified engine/serving API (v2).

Covers the deprecated surfaces — ``ServerConfig(algorithm=...)`` and
the ``use_embedding_cache``/``embedding_cache_bytes`` flags — asserting
both the ``DeprecationWarning`` and behavioral equivalence with the
new-style API, plus the unified ``VectorCache`` protocol and the engine
fixes that ride with it.  ``EmbeddingCache.touch()`` completed its
deprecation cycle and is asserted *gone*.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    EmbeddingCacheConfig,
    EngineConfig,
    MemNNConfig,
    MnnFastEngine,
    TraceCacheMixin,
    TraceVectorCache,
    VectorCache,
)
from repro.core.config import ChunkConfig
from repro.memsim.embedding_cache import EmbeddingCache
from repro.serving import QaServer, ServerConfig, Workload, generate_workload


def _small_network() -> MemNNConfig:
    return MemNNConfig(
        embedding_dim=16, num_sentences=64, num_questions=2,
        vocab_size=128, max_words=6, hops=2,
    )


class TestServerConfigCompat:
    @pytest.mark.parametrize(
        "algorithm", ["baseline", "column", "column_streaming", "mnnfast"]
    )
    def test_legacy_algorithm_warns_and_maps(self, algorithm):
        with pytest.warns(DeprecationWarning, match="algorithm"):
            config = ServerConfig(algorithm=algorithm)
        assert config.algorithm == algorithm
        assert isinstance(config.engine, EngineConfig)

    def test_legacy_cache_flags_warn_and_map(self):
        with pytest.warns(DeprecationWarning, match="use_embedding_cache"):
            config = ServerConfig(use_embedding_cache=True, embedding_cache_bytes=32768)
        assert config.use_embedding_cache is True
        assert config.embedding_cache is not None
        assert config.embedding_cache.size_bytes == 32768

        with pytest.warns(DeprecationWarning):
            config = ServerConfig(use_embedding_cache=False)
        assert config.use_embedding_cache is False
        assert config.embedding_cache is None

    def test_mixing_old_and_new_raises(self):
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ServerConfig(engine=EngineConfig.mnnfast(), algorithm="mnnfast")
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ServerConfig(
                    embedding_cache=EmbeddingCacheConfig(
                        size_bytes=64 * 1024, embedding_dim=48
                    ),
                    use_embedding_cache=True,
                )

    def test_unknown_legacy_algorithm_rejected(self):
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ServerConfig(algorithm="warp-drive")

    def test_new_style_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ServerConfig(
                engine=EngineConfig.mnnfast(),
                embedding_cache=EmbeddingCacheConfig(
                    size_bytes=64 * 1024, embedding_dim=48
                ),
            )

    def test_legacy_and_new_configs_serve_identically(self):
        workload = generate_workload(
            question_rate=5_000.0, story_rate=500.0, duration=0.02, seed=3
        )
        with pytest.warns(DeprecationWarning):
            legacy = ServerConfig(
                algorithm="mnnfast",
                use_embedding_cache=True,
                embedding_cache_bytes=64 * 1024,
            )
        modern = ServerConfig(
            engine=EngineConfig.mnnfast(),
            embedding_cache=EmbeddingCacheConfig(
                size_bytes=64 * 1024, embedding_dim=48
            ),
        )
        legacy_metrics = QaServer(legacy, seed=0).run(workload)
        modern_metrics = QaServer(modern, seed=0).run(workload)
        assert legacy_metrics.summary() == modern_metrics.summary()


class TestCacheProtocolUnification:
    def _cache(self) -> EmbeddingCache:
        return EmbeddingCache(
            EmbeddingCacheConfig(size_bytes=4096, embedding_dim=16)
        )

    def test_embedding_cache_satisfies_protocols(self):
        cache = self._cache()
        assert isinstance(cache, VectorCache)
        assert isinstance(cache, TraceVectorCache)

    def test_touch_shim_is_gone(self):
        # The deprecated pre-unification spelling completed its cycle:
        # probe() is the only trace-mode access.
        cache = self._cache()
        assert not hasattr(cache, "touch")

    def test_probe_does_not_warn(self):
        cache = self._cache()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert cache.probe(7) is False
            assert cache.probe(7) is True

    def test_mixin_derives_probe_from_lookup_insert(self):
        class DictCache(TraceCacheMixin):
            def __init__(self):
                self.data = {}

            def lookup(self, word_id):
                return self.data.get(word_id)

            def insert(self, word_id, vector):
                self.data[word_id] = vector

        cache = DictCache()
        assert isinstance(cache, TraceVectorCache)
        assert cache.probe(5) is False  # cold miss fills the tag
        assert cache.probe(5) is True
        assert cache.probe(6) is False


class TestEngineUnification:
    def _engine(self, engine_config: EngineConfig, seed: int = 0) -> MnnFastEngine:
        config = _small_network()
        engine = MnnFastEngine(config, engine_config=engine_config)
        rng = np.random.default_rng(seed)
        story = rng.integers(1, config.vocab_size, size=(20, config.max_words))
        engine.store_story(story)
        return engine

    def _questions(self, seed: int = 1) -> np.ndarray:
        config = _small_network()
        rng = np.random.default_rng(seed)
        return rng.integers(1, config.vocab_size, size=(2, config.max_words))

    def test_attention_honors_algorithm_and_agrees(self):
        questions = self._questions()
        baseline = self._engine(EngineConfig.baseline()).attention(questions)
        column = self._engine(EngineConfig.mnnfast()).attention(questions)
        np.testing.assert_allclose(baseline, column, rtol=1e-12)
        np.testing.assert_allclose(baseline.sum(axis=1), 1.0)

    def test_attention_honors_stable_softmax_flag(self):
        stable = self._engine(
            EngineConfig(algorithm="column", stable_softmax=True)
        ).attention(self._questions())
        unstable = self._engine(
            EngineConfig(algorithm="column", stable_softmax=False)
        ).attention(self._questions())
        # Well-conditioned scores: both softmax forms agree.
        np.testing.assert_allclose(stable, unstable, rtol=1e-9)

    def test_attention_accepts_vector_cache(self):
        config = _small_network()
        cache = EmbeddingCache(
            EmbeddingCacheConfig(
                size_bytes=config.vocab_size * config.embedding_dim * 4,
                embedding_dim=config.embedding_dim,
            )
        )
        questions = self._questions()
        without = self._engine(EngineConfig.mnnfast()).attention(questions)
        with_cache = self._engine(EngineConfig.mnnfast()).attention(
            questions, cache=cache
        )
        np.testing.assert_allclose(with_cache, without, rtol=1e-12)
        assert cache.stats.accesses > 0  # the cache really sat on the path

    def test_answer_reports_per_hop_stats(self):
        engine = self._engine(EngineConfig.mnnfast())
        hooked = []
        result = engine.answer(
            self._questions(), hop_hook=lambda hop, s: hooked.append(hop)
        )
        assert hooked == [0, 1]  # hops=2, in order
        assert len(result.hop_stats) == 2
        per_hop_flops = sum(s.flops for s in result.hop_stats)
        assert 0 < per_hop_flops < result.stats.flops  # answer layer adds more

    def test_server_accepts_legacy_workload_shapes(self):
        # The v1 entry point still runs end to end.
        workload = generate_workload(
            question_rate=2_000.0, story_rate=0.0, duration=0.01
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            metrics = QaServer(ServerConfig()).run(workload)
        assert metrics.completed == metrics.arrivals > 0


def test_chunk_config_reexport_used_by_legacy_mapping():
    with pytest.warns(DeprecationWarning):
        config = ServerConfig(algorithm="column")
    assert config.engine.chunk == ChunkConfig(streaming=False)
    assert isinstance(Workload(), Workload)
