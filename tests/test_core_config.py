"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import (
    CPU_CONFIG,
    FPGA_CONFIG,
    GPU_CONFIG,
    TABLE1,
    ChunkConfig,
    EmbeddingCacheConfig,
    EngineConfig,
    MemNNConfig,
    ZeroSkipConfig,
)


class TestMemNNConfig:
    def test_defaults_are_positive(self):
        cfg = MemNNConfig()
        assert cfg.embedding_dim > 0
        assert cfg.num_sentences > 0

    @pytest.mark.parametrize(
        "field",
        ["embedding_dim", "num_sentences", "num_questions", "vocab_size",
         "max_words", "hops"],
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError, match=field):
            MemNNConfig(**{field: 0})

    def test_memory_bytes(self):
        cfg = MemNNConfig(embedding_dim=48, num_sentences=1000)
        assert cfg.memory_bytes == 1000 * 48 * 4

    def test_intermediate_bytes_matches_paper_example(self):
        # §3.1: 200M sentences -> 800 MB per intermediate vector per question.
        cfg = MemNNConfig(num_sentences=200_000_000, num_questions=1)
        assert cfg.intermediate_bytes == 800_000_000

    def test_scaled_changes_only_ns(self):
        cfg = CPU_CONFIG.scaled(42)
        assert cfg.num_sentences == 42
        assert cfg.embedding_dim == CPU_CONFIG.embedding_dim

    def test_embedding_matrix_bytes(self):
        cfg = MemNNConfig(embedding_dim=10, vocab_size=100)
        assert cfg.embedding_matrix_bytes == 10 * 100 * 4


class TestChunkConfig:
    def test_num_chunks_exact_division(self):
        assert ChunkConfig(chunk_size=100).num_chunks(1000) == 10

    def test_num_chunks_rounds_up(self):
        assert ChunkConfig(chunk_size=100).num_chunks(1001) == 11

    def test_rejects_zero_chunk(self):
        with pytest.raises(ValueError):
            ChunkConfig(chunk_size=0)


class TestZeroSkipConfig:
    def test_threshold_zero_disables(self):
        assert not ZeroSkipConfig(0.0).enabled

    def test_threshold_enables(self):
        assert ZeroSkipConfig(0.1).enabled

    def test_rejects_threshold_one(self):
        with pytest.raises(ValueError):
            ZeroSkipConfig(1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            ZeroSkipConfig(-0.1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ZeroSkipConfig(0.1, mode="magic")


class TestEmbeddingCacheConfig:
    def test_entries_from_geometry(self):
        # §4.2: entry word size is the embedding dimension (32 * ed bits).
        cfg = EmbeddingCacheConfig(size_bytes=64 * 1024, embedding_dim=256)
        assert cfg.entry_bytes == 1024
        assert cfg.num_entries == 64

    def test_rejects_cache_smaller_than_one_entry(self):
        with pytest.raises(ValueError, match="too small"):
            EmbeddingCacheConfig(size_bytes=512, embedding_dim=256)


class TestEngineConfig:
    def test_baseline_preset(self):
        cfg = EngineConfig.baseline()
        assert cfg.algorithm == "baseline"
        assert not cfg.chunk.streaming

    def test_mnnfast_preset_enables_everything(self):
        cfg = EngineConfig.mnnfast()
        assert cfg.algorithm == "column"
        assert cfg.chunk.streaming
        assert cfg.zero_skip.enabled

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            EngineConfig(algorithm="quantum")


class TestTable1:
    def test_platform_embedding_dims(self):
        # Paper Table 1: ed = 48 / 64 / 25 for CPU / GPU / FPGA.
        assert CPU_CONFIG.embedding_dim == 48
        assert GPU_CONFIG.embedding_dim == 64
        assert FPGA_CONFIG.embedding_dim == 25

    def test_fpga_database_is_1000_sentences(self):
        assert TABLE1["FPGA"]["database_sentences"] == 1000
        assert FPGA_CONFIG.num_sentences == 1000

    def test_cpu_chunk_is_1000(self):
        assert TABLE1["CPU"]["chunk_size"] == 1000

    def test_paper_database_scale_preserved(self):
        assert TABLE1["CPU"]["database_sentences"] == 100_000_000
        assert TABLE1["GPU"]["database_sentences"] == 100_000_000
