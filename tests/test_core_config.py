"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import (
    CPU_CONFIG,
    FPGA_CONFIG,
    GPU_CONFIG,
    TABLE1,
    ChunkConfig,
    EmbeddingCacheConfig,
    EngineConfig,
    MemNNConfig,
    ZeroSkipConfig,
)


class TestMemNNConfig:
    def test_defaults_are_positive(self):
        cfg = MemNNConfig()
        assert cfg.embedding_dim > 0
        assert cfg.num_sentences > 0

    @pytest.mark.parametrize(
        "field",
        ["embedding_dim", "num_sentences", "num_questions", "vocab_size",
         "max_words", "hops"],
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError, match=field):
            MemNNConfig(**{field: 0})

    def test_memory_bytes(self):
        cfg = MemNNConfig(embedding_dim=48, num_sentences=1000)
        assert cfg.memory_bytes == 1000 * 48 * 4

    def test_intermediate_bytes_matches_paper_example(self):
        # §3.1: 200M sentences -> 800 MB per intermediate vector per question.
        cfg = MemNNConfig(num_sentences=200_000_000, num_questions=1)
        assert cfg.intermediate_bytes == 800_000_000

    def test_scaled_changes_only_ns(self):
        cfg = CPU_CONFIG.scaled(42)
        assert cfg.num_sentences == 42
        assert cfg.embedding_dim == CPU_CONFIG.embedding_dim

    def test_embedding_matrix_bytes(self):
        cfg = MemNNConfig(embedding_dim=10, vocab_size=100)
        assert cfg.embedding_matrix_bytes == 10 * 100 * 4


class TestChunkConfig:
    def test_num_chunks_exact_division(self):
        assert ChunkConfig(chunk_size=100).num_chunks(1000) == 10

    def test_num_chunks_rounds_up(self):
        assert ChunkConfig(chunk_size=100).num_chunks(1001) == 11

    def test_rejects_zero_chunk(self):
        with pytest.raises(ValueError):
            ChunkConfig(chunk_size=0)


class TestZeroSkipConfig:
    def test_threshold_zero_disables(self):
        assert not ZeroSkipConfig(0.0).enabled

    def test_threshold_enables(self):
        assert ZeroSkipConfig(0.1).enabled

    def test_rejects_threshold_one(self):
        with pytest.raises(ValueError):
            ZeroSkipConfig(1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            ZeroSkipConfig(-0.1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ZeroSkipConfig(0.1, mode="magic")


class TestEmbeddingCacheConfig:
    def test_entries_from_geometry(self):
        # §4.2: entry word size is the embedding dimension (32 * ed bits).
        cfg = EmbeddingCacheConfig(size_bytes=64 * 1024, embedding_dim=256)
        assert cfg.entry_bytes == 1024
        assert cfg.num_entries == 64

    def test_rejects_cache_smaller_than_one_entry(self):
        with pytest.raises(ValueError, match="too small"):
            EmbeddingCacheConfig(size_bytes=512, embedding_dim=256)


class TestEngineConfig:
    def test_baseline_preset(self):
        cfg = EngineConfig.baseline()
        assert cfg.algorithm == "baseline"
        assert not cfg.chunk.streaming

    def test_mnnfast_preset_enables_everything(self):
        cfg = EngineConfig.mnnfast()
        assert cfg.algorithm == "column"
        assert cfg.chunk.streaming
        assert cfg.zero_skip.enabled

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            EngineConfig(algorithm="quantum")


class TestBuilders:
    """The preset classmethods are thin wrappers over the ``with_*``
    builders (ISSUE 6): each preset must equal the equivalent explicit
    builder chain — structural equality on frozen dataclasses is
    byte-identity here."""

    def test_baseline_equals_builder_chain(self):
        assert EngineConfig.baseline() == (
            EngineConfig()
            .with_algorithm("baseline")
            .with_chunking(streaming=False)
        )

    def test_mnnfast_equals_builder_chain(self):
        assert EngineConfig.mnnfast() == (
            EngineConfig()
            .with_chunking(chunk_size=1000, streaming=True)
            .with_zero_skip(0.1)
        )
        assert EngineConfig.mnnfast(chunk_size=500, threshold=0.2) == (
            EngineConfig()
            .with_chunking(chunk_size=500, streaming=True)
            .with_zero_skip(0.2)
        )

    def test_batched_equals_builder_chain(self):
        assert EngineConfig.batched(16, max_wait=2e-3) == (
            EngineConfig.mnnfast().with_batching(16, max_wait=2e-3)
        )

    def test_sharded_equals_builder_chain(self):
        assert EngineConfig.sharded(4, shard_policy="strided") == (
            EngineConfig()
            .with_chunking(chunk_size=1000, streaming=True)
            .with_zero_skip(0.0)
            .with_sharding(4, shard_policy="strided")
        )

    def test_parallel_equals_builder_chain(self):
        assert EngineConfig.parallel(4, dtype="float32") == (
            EngineConfig.sharded(4)
            .with_execution(backend="process", num_workers=4, dtype="float32")
        )
        assert EngineConfig.parallel(4, backend="thread") == (
            EngineConfig.sharded(4)
            .with_execution(backend="thread", num_workers=4)
        )

    def test_out_of_core_equals_builder_chain(self):
        assert EngineConfig.out_of_core(path="/tmp/m", num_shards=2) == (
            EngineConfig()
            .with_chunking(chunk_size=1000, streaming=True)
            .with_zero_skip(0.0)
            .with_store(
                backend="mmap",
                path="/tmp/m",
                resident_bytes=32 * 1024 * 1024,
                prefetch_depth=2,
            )
            .with_sharding(2)
        )

    def test_builders_return_new_frozen_configs(self):
        base = EngineConfig()
        derived = base.with_zero_skip(0.1)
        assert derived is not base
        assert base.zero_skip.threshold == 0.0  # original untouched
        with pytest.raises(Exception):
            derived.algorithm = "sharded"  # frozen

    def test_with_sharding_sets_algorithm(self):
        config = EngineConfig().with_sharding(8)
        assert config.algorithm == "sharded"
        assert config.num_shards == 8

    def test_with_execution_upgrades_serial_to_process(self):
        # Multiple workers without an explicit backend pick the process
        # backend — the one that measured a real speedup (the thread
        # backend measured 0.79-0.99x vs serial).
        config = EngineConfig().with_execution(num_workers=4)
        assert config.execution.backend == "process"
        assert config.execution.num_workers == 4
        # num_workers=1 stays serial; an explicit serial backend with
        # multiple workers is contradictory and rejected outright.
        assert EngineConfig().with_execution(num_workers=1).execution.backend == "serial"
        with pytest.raises(ValueError, match="num_workers"):
            EngineConfig().with_execution(backend="serial", num_workers=4)

    def test_with_store_preserves_omitted_knobs(self):
        config = EngineConfig().with_store(backend="mmap", path="/tmp/x")
        again = config.with_store(resident_bytes=1024)
        assert again.store.backend == "mmap"
        assert again.store.path == "/tmp/x"
        assert again.store.resident_bytes == 1024

    def test_validate_returns_self_on_valid_configs(self):
        for config in (
            EngineConfig.baseline(),
            EngineConfig.mnnfast(),
            EngineConfig.sharded(4),
            EngineConfig.parallel(2),
            EngineConfig.out_of_core(),
            EngineConfig.mnnfast().with_topk(nprobe=8),
        ):
            assert config.validate() is config

    def test_validate_rejects_cross_field_violations(self):
        with pytest.raises(ValueError, match="baseline"):
            EngineConfig.baseline().with_topk(nprobe=8).validate()
        with pytest.raises(ValueError, match="num_shards"):
            EngineConfig(algorithm="column", num_shards=4).validate()


class TestTable1:
    def test_platform_embedding_dims(self):
        # Paper Table 1: ed = 48 / 64 / 25 for CPU / GPU / FPGA.
        assert CPU_CONFIG.embedding_dim == 48
        assert GPU_CONFIG.embedding_dim == 64
        assert FPGA_CONFIG.embedding_dim == 25

    def test_fpga_database_is_1000_sentences(self):
        assert TABLE1["FPGA"]["database_sentences"] == 1000
        assert FPGA_CONFIG.num_sentences == 1000

    def test_cpu_chunk_is_1000(self):
        assert TABLE1["CPU"]["chunk_size"] == 1000

    def test_paper_database_scale_preserved(self):
        assert TABLE1["CPU"]["database_sentences"] == 100_000_000
        assert TABLE1["GPU"]["database_sentences"] == 100_000_000
