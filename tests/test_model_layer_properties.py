"""Property-based tests for the model layers and the bAbI file format."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import generate_task
from repro.data.babi_format import dumps_examples, loads_examples
from repro.model.layers import (
    attention_softmax,
    embed_sum,
    softmax_cross_entropy,
)

value = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, (6, 4), elements=value),
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=5),
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
)
def test_embed_sum_is_linear_in_the_table(embedding, tokens, scale):
    tokens = np.array([tokens])
    base = embed_sum(embedding, tokens)
    scaled = embed_sum(embedding * scale, tokens)
    np.testing.assert_allclose(scaled, base * scale, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, (3, 7), elements=value),
    arrays(np.bool_, (3, 7), elements=st.booleans()),
)
def test_attention_softmax_distribution(scores, valid):
    valid = valid.copy()
    valid[:, 0] = True  # at least one real slot per row
    p = attention_softmax(scores, valid)
    assert np.all(p >= 0.0)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0)
    assert np.all(p[~valid] == 0.0)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, (4, 6), elements=value),
    st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=4),
)
def test_cross_entropy_properties(logits, targets):
    targets = np.array(targets)
    loss, grad, probs = softmax_cross_entropy(logits, targets)
    assert loss >= 0.0
    # Softmax-CE gradient rows sum to zero (shift invariance).
    np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-12)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=1000),
)
def test_babi_format_round_trip_any_task(task_id, seed):
    examples = generate_task(task_id, 3, seed=seed)
    parsed = loads_examples(dumps_examples(examples), task_id=task_id)
    assert len(parsed) == len(examples)
    for original, restored in zip(examples, parsed):
        assert restored.story == original.story
        assert restored.question == original.question
        assert restored.answer == original.answer
