"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the suite from a fresh checkout without an installed
# package (e.g. offline environments where editable installs fail).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_memories(rng):
    """A small (ns=64, ed=8) pair of memory matrices."""
    ns, ed = 64, 8
    return rng.normal(size=(ns, ed)), rng.normal(size=(ns, ed))


@pytest.fixture
def questions(rng):
    """A batch of 5 question state vectors of width 8."""
    return rng.normal(size=(5, 8))
