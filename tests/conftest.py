"""Shared fixtures for the test suite, plus the runaway-test gate."""

import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

# Allow running the suite from a fresh checkout without an installed
# package (e.g. offline environments where editable installs fail).
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Per-test wall-clock budget in seconds; unset/empty disables the
#: gate.  CI exports it (see .github/workflows/ci.yml) so a single
#: runaway test fails loudly instead of silently dragging the suite.
_MAX_TEST_SECONDS = os.environ.get("PYTEST_MAX_TEST_SECONDS", "")


#: Budget multiplier for tests marked ``process_pool``: spawning (and
#: under the spawn start method, re-importing the interpreter in)
#: worker processes is a fixed startup cost unrelated to the numerics
#: under test, so those tests get extra headroom instead of a global
#: budget raise.
_PROCESS_POOL_BUDGET_FACTOR = 3.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if not _MAX_TEST_SECONDS:
        yield
        return
    budget = float(_MAX_TEST_SECONDS)
    if item.get_closest_marker("process_pool") is not None:
        budget *= _PROCESS_POOL_BUDGET_FACTOR
    started = time.perf_counter()
    yield
    elapsed = time.perf_counter() - started
    if elapsed > budget:
        pytest.fail(
            f"{item.nodeid} took {elapsed:.1f}s, over the "
            f"PYTEST_MAX_TEST_SECONDS={budget:g}s budget",
            pytrace=False,
        )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_memories(rng):
    """A small (ns=64, ed=8) pair of memory matrices."""
    ns, ed = 64, 8
    return rng.normal(size=(ns, ed)), rng.normal(size=(ns, ed))


@pytest.fixture
def questions(rng):
    """A batch of 5 question state vectors of width 8."""
    return rng.normal(size=(5, 8))
