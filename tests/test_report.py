"""Tests for the plain-text report helpers."""

import pytest

from repro.report import format_percent, format_series, format_speedup, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # All rows share the same separator width.
        assert len(lines[1]) >= len("long-name  22") - 1

    def test_title(self):
        text = format_table(["h"], [["x"]], title="Fig. 1")
        assert text.splitlines()[0] == "Fig. 1"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a", "b"], [["only-one"]])


class TestFormatters:
    def test_series(self):
        text = format_series("speedup", {1: 1.0, 2: 1.9})
        assert text == "speedup: 1=1.00 2=1.90"

    def test_series_custom_format(self):
        text = format_series("x", {"k": 0.123456}, value_format="{:.4f}")
        assert text == "x: k=0.1235"

    def test_percent(self):
        assert format_percent(0.345) == "34.5%"
        assert format_percent(1.0) == "100.0%"

    def test_speedup(self):
        assert format_speedup(2.013) == "2.01x"
