"""Unit tests for the set-associative cache model."""

import pytest

from repro.memsim.block import is_power_of_two, lines_touched, set_index_and_tag
from repro.memsim.cache import SetAssociativeCache


class TestBlockMath:
    def test_power_of_two(self):
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(96)

    def test_single_line(self):
        assert list(lines_touched(0, 64, 64)) == [0]

    def test_straddling_access(self):
        assert list(lines_touched(60, 8, 64)) == [0, 1]

    def test_large_access(self):
        assert list(lines_touched(0, 256, 64)) == [0, 1, 2, 3]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(lines_touched(0, 0, 64))

    def test_set_index_and_tag_roundtrip(self):
        set_idx, tag = set_index_and_tag(line=1234, num_sets=16)
        assert tag * 16 + set_idx == 1234


def make_cache(**kwargs):
    defaults = dict(size_bytes=1024, line_bytes=64, associativity=2)
    defaults.update(kwargs)
    return SetAssociativeCache(**defaults)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0, 8)
        second = cache.access(0, 8)
        assert (first.misses, first.hits) == (1, 0)
        assert (second.misses, second.hits) == (0, 1)

    def test_spatial_locality_within_line(self):
        cache = make_cache()
        cache.access(0, 4)
        assert cache.access(60, 4).hits == 1

    def test_multi_line_access_counts_each_line(self):
        cache = make_cache()
        outcome = cache.access(0, 256)
        assert outcome.misses == 4

    def test_capacity_eviction(self):
        cache = make_cache(size_bytes=128, associativity=1)  # 2 sets x 1 way
        cache.access(0, 1)       # set 0
        cache.access(128, 1)     # set 0 again -> evicts line 0
        assert cache.access(0, 1).misses == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="powers of two"):
            SetAssociativeCache(size_bytes=1000)
        with pytest.raises(ValueError, match="associativity"):
            SetAssociativeCache(size_bytes=1024, line_bytes=64, associativity=5)
        with pytest.raises(ValueError, match="policy"):
            SetAssociativeCache(size_bytes=1024, policy="random")
        with pytest.raises(ValueError, match="smaller"):
            SetAssociativeCache(size_bytes=32, line_bytes=64)

    def test_resident_lines(self):
        cache = make_cache()
        cache.access(0, 64)
        cache.access(64, 64)
        assert cache.resident_lines == 2


class TestReplacement:
    def test_lru_keeps_recently_used(self):
        # 1 set, 2 ways: touch A, B, re-touch A, insert C -> B evicted.
        cache = SetAssociativeCache(size_bytes=128, line_bytes=64, associativity=2)
        cache.access(0, 1)    # A
        cache.access(128, 1)  # B (same set: 1 set total)
        cache.access(0, 1)    # A again
        cache.access(256, 1)  # C evicts B under LRU
        assert cache.access(0, 1).hits == 1      # A survived
        assert cache.access(128, 1).misses == 1  # B evicted

    def test_fifo_ignores_recency(self):
        cache = SetAssociativeCache(
            size_bytes=128, line_bytes=64, associativity=2, policy="fifo"
        )
        cache.access(0, 1)    # A
        cache.access(128, 1)  # B
        cache.access(0, 1)    # A touched again (FIFO ignores)
        cache.access(256, 1)  # C evicts A (oldest insertion)
        assert cache.access(128, 1).hits == 1    # B survived
        assert cache.access(0, 1).misses == 1    # A evicted


class TestWriteback:
    def test_dirty_eviction_writes_back(self):
        cache = SetAssociativeCache(size_bytes=64, line_bytes=64, associativity=1)
        cache.access(0, 8, write=True)
        outcome = cache.access(64, 8)  # evicts dirty line
        assert outcome.writebacks == 1

    def test_clean_eviction_is_silent(self):
        cache = SetAssociativeCache(size_bytes=64, line_bytes=64, associativity=1)
        cache.access(0, 8)
        assert cache.access(64, 8).writebacks == 0

    def test_flush_reports_dirty_lines(self):
        cache = make_cache()
        cache.access(0, 8, write=True)
        cache.access(64, 8)
        assert cache.flush() == 1
        assert cache.resident_lines == 0


class TestBypass:
    def test_bypass_does_not_allocate(self):
        cache = make_cache()
        cache.access(0, 8, bypass=True)
        assert not cache.contains(0)
        assert cache.access(0, 8).misses == 1

    def test_bypass_counts_dram_lines(self):
        cache = make_cache()
        outcome = cache.access(0, 128, bypass=True)
        assert outcome.bypassed == 2
        assert outcome.dram_lines == 2

    def test_bypass_leaves_resident_lines_untouched(self):
        cache = make_cache()
        cache.access(0, 8)
        cache.access(0, 8, bypass=True)
        assert cache.access(0, 8).hits == 1


class TestPrefetch:
    def test_prefetch_turns_miss_into_hit(self):
        cache = make_cache()
        fills = cache.prefetch(0, 64)
        assert fills == 1
        outcome = cache.access(0, 8)
        assert outcome.hits == 1
        assert cache.stats.prefetched_hits == 1

    def test_prefetch_skips_resident_lines(self):
        cache = make_cache()
        cache.access(0, 8)
        assert cache.prefetch(0, 64) == 0

    def test_prefetch_is_not_a_demand_access(self):
        cache = make_cache()
        cache.prefetch(0, 128)
        assert cache.stats.misses == 0
        assert cache.stats.prefetch_fills == 2


class TestStreamStats:
    def test_per_stream_partition(self):
        cache = make_cache()
        cache.access(0, 8, stream="a")
        cache.access(0, 8, stream="b")
        assert cache.stats.by_stream["a"].misses == 1
        assert cache.stats.by_stream["b"].hits == 1

    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0, 8)
        cache.access(0, 8)
        cache.access(0, 8)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate(self):
        assert make_cache().stats.hit_rate == 0.0
