"""Tests for the key-value memory extension (core/kv.py + data/kb.py)."""

import numpy as np
import pytest

from repro.core import ChunkConfig, ZeroSkipConfig
from repro.core.column import ColumnMemNN
from repro.core.kv import InvertedIndex, KeyValueMemory, KVMnnFast
from repro.data.kb import Fact, generate_movie_kb


@pytest.fixture(scope="module")
def movie_kb():
    return generate_movie_kb(num_films=120, seed=3)


@pytest.fixture(scope="module")
def kv_engine(movie_kb):
    kb, _ = movie_kb
    return KVMnnFast(kb)


class TestKnowledgeBase:
    def test_every_film_has_core_relations(self, movie_kb):
        kb, _ = movie_kb
        subjects = {fact.subject for fact in kb.facts}
        for subject in list(subjects)[:10]:
            relations = {f.relation for f in kb.facts_about(subject)}
            assert {"directed_by", "release_year", "has_genre"} <= relations
            assert "starring" in relations

    def test_questions_have_valid_answers(self, movie_kb):
        kb, questions = movie_kb
        for question in questions:
            assert question.answer in question.valid_answers
            fact = kb.facts[question.fact_index]
            assert fact.obj == question.answer

    def test_question_shares_relation_keyword_with_key(self, movie_kb):
        kb, questions = movie_kb
        for question in questions[:40]:
            fact = kb.facts[question.fact_index]
            assert set(fact.key_tokens()) & set(question.tokens)

    def test_vocabulary_covers_everything(self, movie_kb):
        kb, questions = movie_kb
        for fact in kb.facts:
            for token in fact.key_tokens():
                assert token in kb.vocabulary
            assert fact.value_token() in kb.vocabulary
        for question in questions:
            for token in question.tokens:
                assert token in kb.vocabulary

    def test_deterministic(self):
        a, qa = generate_movie_kb(num_films=10, seed=5)
        b, qb = generate_movie_kb(num_films=10, seed=5)
        assert [f.obj for f in a.facts] == [f.obj for f in b.facts]
        assert [q.tokens for q in qa] == [q.tokens for q in qb]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_movie_kb(num_films=0)
        with pytest.raises(ValueError):
            generate_movie_kb(num_films=5, questions_per_film=0)


class TestKeyValueMemory:
    def test_encoding_shapes(self, movie_kb):
        kb, _ = movie_kb
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(len(kb.vocabulary), 32))
        memory = KeyValueMemory.from_knowledge_base(kb, emb)
        assert len(memory) == len(kb)
        assert memory.embedding_dim == 32

    def test_key_is_bow_sum(self, movie_kb):
        kb, _ = movie_kb
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(len(kb.vocabulary), 16))
        memory = KeyValueMemory.from_knowledge_base(kb, emb)
        fact = kb.facts[0]
        expected = sum(emb[kb.vocabulary.id_of(t)] for t in fact.key_tokens())
        np.testing.assert_allclose(memory.keys[0], expected)

    def test_value_is_object_embedding(self, movie_kb):
        kb, _ = movie_kb
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(len(kb.vocabulary), 16))
        memory = KeyValueMemory.from_knowledge_base(kb, emb)
        fact = kb.facts[3]
        np.testing.assert_allclose(
            memory.values[3], emb[kb.vocabulary.id_of(fact.obj)]
        )

    def test_subset_gathers(self, movie_kb):
        kb, _ = movie_kb
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(len(kb.vocabulary), 16))
        memory = KeyValueMemory.from_knowledge_base(kb, emb)
        sub = memory.subset([2, 5, 9])
        assert len(sub) == 3
        np.testing.assert_allclose(sub.keys[1], memory.keys[5])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            KeyValueMemory(
                keys=np.zeros((3, 4)), values=np.zeros((3, 5)),
                value_ids=np.zeros(3, dtype=np.int64),
            )


class TestInvertedIndex:
    def test_correct_slot_always_among_candidates(self, movie_kb):
        kb, questions = movie_kb
        index = InvertedIndex.from_knowledge_base(kb)
        for question in questions:
            candidates = index.candidates(question.tokens)
            assert question.fact_index in candidates

    def test_hashing_shrinks_candidate_set(self, movie_kb):
        kb, questions = movie_kb
        index = InvertedIndex.from_knowledge_base(kb)
        sizes = [len(index.candidates(q.tokens)) for q in questions]
        assert max(sizes) < len(kb)
        assert sum(sizes) / len(sizes) < 0.5 * len(kb)

    def test_unknown_words_return_empty(self, movie_kb):
        kb, _ = movie_kb
        index = InvertedIndex.from_knowledge_base(kb)
        assert index.candidates(["zzzz", "qqqq"]).size == 0

    def test_max_df_validation(self, movie_kb):
        kb, _ = movie_kb
        index = InvertedIndex.from_knowledge_base(kb)
        with pytest.raises(ValueError):
            index.candidates(["who"], max_df=0.0)


class TestKVMnnFast:
    def test_retrieval_accuracy(self, movie_kb, kv_engine):
        _, questions = movie_kb
        correct = sum(
            kv_engine.answer(q.tokens).answer_token in q.valid_answers
            for q in questions
        )
        assert correct / len(questions) > 0.95

    def test_hashing_matches_full_scan_answers(self, movie_kb, kv_engine):
        _, questions = movie_kb
        for question in questions[:25]:
            hashed = kv_engine.answer(question.tokens, use_hashing=True)
            full = kv_engine.answer(question.tokens, use_hashing=False)
            assert hashed.answer_token == full.answer_token
            assert hashed.candidates_scanned <= full.candidates_scanned

    def test_hashing_reduction_reported(self, movie_kb, kv_engine):
        _, questions = movie_kb
        answer = kv_engine.answer(questions[0].tokens)
        assert 0.0 < answer.hashing_reduction < 1.0

    def test_column_reading_matches_baseline(self, movie_kb, kv_engine):
        """The KV read is the same Eq. (3)/(4) pipeline: chunking must
        not change the soft reading."""
        _, questions = movie_kb
        q = kv_engine.encode_question(questions[0].tokens)
        memory = kv_engine.memory
        small_chunks = ColumnMemNN(
            memory.keys, memory.values, chunk=ChunkConfig(chunk_size=7)
        ).output(q)
        one_chunk = ColumnMemNN(
            memory.keys, memory.values, chunk=ChunkConfig(chunk_size=10_000)
        ).output(q)
        np.testing.assert_allclose(
            small_chunks.output, one_chunk.output, rtol=1e-9
        )

    def test_zero_skip_reduces_value_reads(self, movie_kb):
        kb, questions = movie_kb
        skipping = KVMnnFast(
            kb, zero_skip=ZeroSkipConfig(threshold=0.01, mode="probability")
        )
        answer = skipping.answer(questions[0].tokens, use_hashing=False)
        assert answer.stats.rows_skipped > 0
        # The hard retrieval must be unaffected by skipping soft reads.
        assert answer.answer_token in questions[0].valid_answers

    def test_unknown_question_words_ignored(self, kv_engine):
        vector = kv_engine.encode_question(["notaword", "who"])
        only_known = kv_engine.encode_question(["who"])
        np.testing.assert_allclose(vector, only_known)
