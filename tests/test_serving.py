"""Tests for the multi-tenant QA serving simulator."""

import pytest

from repro.core import EmbeddingCacheConfig, EngineConfig
from repro.core.config import FLOAT_BYTES
from repro.serving import (
    QaServer,
    QuestionRequest,
    ServerConfig,
    StoryRequest,
    generate_workload,
)


def _cache_config(size_bytes: int = 64 * 1024) -> EmbeddingCacheConfig:
    return EmbeddingCacheConfig(size_bytes=size_bytes, embedding_dim=48)


class TestWorkload:
    def test_poisson_counts_roughly_match_rate(self):
        workload = generate_workload(
            question_rate=100, story_rate=10, duration=10.0, seed=0
        )
        assert 800 <= len(workload.questions) <= 1200
        assert 60 <= len(workload.stories) <= 140

    def test_requests_time_ordered(self):
        workload = generate_workload(50, 50, 5.0, seed=1)
        arrivals = [r.arrival for r in workload.requests]
        assert arrivals == sorted(arrivals)

    def test_zero_story_rate(self):
        workload = generate_workload(50, 0, 2.0)
        assert not workload.stories

    def test_deterministic_under_seed(self):
        a = generate_workload(50, 10, 2.0, seed=3)
        b = generate_workload(50, 10, 2.0, seed=3)
        assert [r.arrival for r in a.requests] == [r.arrival for r in b.requests]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload(0, 1, 1.0)
        with pytest.raises(ValueError):
            generate_workload(1, -1, 1.0)
        with pytest.raises(ValueError):
            generate_workload(1, 1, 0.0)
        with pytest.raises(ValueError):
            QuestionRequest(arrival=-1.0, words=3)
        with pytest.raises(ValueError):
            StoryRequest(arrival=0.0, sentences=0, words_per_sentence=5)


class TestServiceTimes:
    def test_mnnfast_question_service_faster_than_baseline(self):
        workload_request = QuestionRequest(arrival=0.0, words=6)
        base = QaServer(ServerConfig(engine=EngineConfig.baseline()))
        fast = QaServer(ServerConfig(engine=EngineConfig.mnnfast()))
        assert fast.question_service_seconds(
            workload_request
        ) < base.question_service_seconds(workload_request)

    def test_embedding_cache_speeds_up_hot_words(self):
        server = QaServer(ServerConfig(embedding_cache=_cache_config()))
        cold = server.embedding_word_seconds(7)
        warm = server.embedding_word_seconds(7)
        assert warm < cold

    def test_no_cache_every_lookup_pays_dram(self):
        server = QaServer(ServerConfig())
        first = server.embedding_word_seconds(7)
        second = server.embedding_word_seconds(7)
        assert first == second

    def test_story_service_scales_with_words(self):
        server = QaServer(ServerConfig())
        short = server.story_service_seconds(StoryRequest(0.0, 2, 5))
        long = server.story_service_seconds(StoryRequest(0.0, 20, 5))
        assert long > short

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(workers=0)


class TestDiskTierCostModel:
    """The out-of-core store's serving cost: disk-stream bandwidth is
    charged separately from DRAM, and prefetch overlaps it with
    compute (max) while demand fetching serializes it (sum)."""

    def _server(self, engine: EngineConfig, **kwargs) -> QaServer:
        return QaServer(ServerConfig(engine=engine, **kwargs))

    def test_resident_engine_streams_nothing_from_disk(self):
        assert self._server(EngineConfig()).disk_stream_seconds() == 0.0
        assert self._server(EngineConfig.mnnfast()).disk_stream_seconds() == 0.0

    def test_disk_bytes_are_footprint_minus_budget(self):
        server = self._server(
            EngineConfig.out_of_core(resident_bytes=None, prefetch_depth=0)
        )
        network = server.config.network
        footprint = (
            2 * network.num_sentences * network.embedding_dim * FLOAT_BYTES
        )
        assert server.disk_stream_seconds() == pytest.approx(
            footprint / server.config.disk_bandwidth
        )
        budget = footprint // 4
        cached = self._server(
            EngineConfig.out_of_core(resident_bytes=budget, prefetch_depth=0)
        )
        assert cached.disk_stream_seconds() == pytest.approx(
            (footprint - budget) / server.config.disk_bandwidth
        )

    def test_budget_covering_footprint_reaches_resident_cost(self):
        resident_hop = self._server(EngineConfig()).hop_seconds()
        covered = self._server(
            EngineConfig.out_of_core(resident_bytes=1 << 40)
        )
        assert covered.disk_stream_seconds() == 0.0
        assert covered.hop_seconds() == pytest.approx(resident_hop)

    def test_demand_fetch_serializes_disk_behind_compute(self):
        resident_hop = self._server(EngineConfig()).hop_seconds()
        server = self._server(
            EngineConfig.out_of_core(resident_bytes=None, prefetch_depth=0)
        )
        assert server.hop_seconds() == pytest.approx(
            resident_hop + server.disk_stream_seconds()
        )

    def test_prefetch_overlaps_disk_with_compute(self):
        resident_hop = self._server(EngineConfig()).hop_seconds()
        server = self._server(
            EngineConfig.out_of_core(resident_bytes=None, prefetch_depth=2)
        )
        disk = server.disk_stream_seconds()
        assert server.hop_seconds() == pytest.approx(
            max(resident_hop, disk)
        )
        assert server.hop_seconds() <= resident_hop + disk

    def test_hop_cost_monotone_in_budget(self):
        hops = [
            self._server(
                EngineConfig.out_of_core(
                    resident_bytes=budget, prefetch_depth=0
                )
            ).hop_seconds()
            for budget in (1, 1 << 20, 1 << 24, 1 << 40)
        ]
        assert hops == sorted(hops, reverse=True)

    def test_faster_disk_shrinks_the_stream(self):
        engine = EngineConfig.out_of_core(resident_bytes=None)
        slow = self._server(engine, disk_bandwidth=5e8)
        fast = self._server(engine, disk_bandwidth=8e9)
        assert fast.disk_stream_seconds() < slow.disk_stream_seconds()

    def test_disk_bandwidth_validation(self):
        with pytest.raises(ValueError, match="disk_bandwidth"):
            ServerConfig(disk_bandwidth=0.0)


class TestSimulation:
    def test_all_requests_complete(self):
        workload = generate_workload(200, 20, 2.0, seed=0)
        metrics = QaServer(ServerConfig()).run(workload)
        assert len(metrics.samples) == len(workload.requests)

    def test_latency_at_least_service_time(self):
        workload = generate_workload(100, 0, 1.0, seed=0)
        metrics = QaServer(ServerConfig()).run(workload)
        assert all(s.latency >= s.service - 1e-12 for s in metrics.samples)

    def test_underloaded_server_has_no_queueing(self):
        workload = generate_workload(10, 0, 1.0, seed=0)
        metrics = QaServer(ServerConfig(workers=8)).run(workload)
        assert metrics.latency_percentile(95) < 2 * metrics.mean_latency() + 1e-6
        assert all(s.queueing < 1e-9 for s in metrics.samples)

    def test_overload_builds_queues(self):
        """Past saturation, baseline latency explodes while MnnFast holds."""
        rate = 30_000  # beyond the baseline's 4-worker capacity
        workload = generate_workload(rate, 0, 0.2, seed=0)
        base = QaServer(ServerConfig(engine=EngineConfig.baseline())).run(workload)
        fast = QaServer(ServerConfig(engine=EngineConfig.mnnfast())).run(workload)
        assert fast.mean_latency() < base.mean_latency()
        assert fast.throughput() >= base.throughput()

    def test_contention_inflates_inference_latency(self):
        workload = generate_workload(500, 400, 1.0, seed=0)
        shared = QaServer(ServerConfig(engine=EngineConfig.mnnfast())).run(workload)
        isolated = QaServer(
            ServerConfig(engine=EngineConfig.mnnfast(), embedding_cache=_cache_config())
        ).run(workload)
        assert isolated.mean_latency() <= shared.mean_latency()

    def test_summary_keys(self):
        workload = generate_workload(50, 5, 1.0, seed=0)
        summary = QaServer(ServerConfig()).run(workload).summary()
        assert summary["questions_completed"] > 0
        assert summary["question_throughput"] > 0
