"""The multicore execution tier: process-parallel shards and the fused
batchxshard tile kernel.

Two contracts, held at different strengths:

* **Process backend == serial, bitwise.**  Every worker runs the exact
  per-shard ``ColumnMemNN`` kernel on the exact shard bytes (the
  spilled store holds the dtype-converted memories; a GEMM over a
  memmap view equals one over a contiguous copy bit for bit), and
  results are collected in shard order — so at *every* worker count
  the merged output is ``array_equal`` to serial, not merely close.
* **Fused kernel == per-shard loop, 1e-10.**  The tile sweep regroups
  the chunk geometry (tile boundaries are not shard-chunk
  boundaries), which reorders the running-max rescales — the same
  1e-10 class of difference as any chunk-size change.  Exp-mode
  zero-skip masks depend only on raw scores and match exactly;
  probability-mode masks read the running denominator and are
  geometry-dependent by construction (excluded from the grid, as they
  are for any cross-geometry comparison).

Plus the failure mode: a worker process dying mid-computation must
surface as a clean ``RuntimeError`` — never a hang — and the next
request must transparently rebuild the pool.
"""

import os
import signal
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChunkConfig,
    ColumnMemNN,
    EngineConfig,
    EngineWeights,
    ExecutionConfig,
    MemNNConfig,
    MnnFastEngine,
    ShardedMemNN,
    ZeroSkipConfig,
)
from repro.core.thread_limits import apply_blas_limit, blas_thread_info
from repro.store import MmapStore

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "benchmarks")
)
from validate_artifacts import _validate_core  # noqa: E402

LOGIT_TOLERANCE = 1e-10


def _problem(seed=0):
    rng = np.random.default_rng(seed)
    config = MemNNConfig(
        embedding_dim=16,
        num_sentences=200,
        num_questions=4,
        vocab_size=60,
        max_words=6,
        hops=2,
    )
    weights = EngineWeights.random(config, rng=rng)
    story = rng.integers(1, 60, size=(53, 6))
    questions = rng.integers(1, 60, size=(4, 6))
    return config, weights, story, questions


def _answer(engine_config, seed=0):
    config, weights, story, questions = _problem(seed)
    engine = MnnFastEngine(config, weights, engine_config=engine_config)
    engine.store_story(story)
    try:
        return engine.answer(questions)
    finally:
        engine.close()


def _random_memories(seed=0, ns=300, ed=12, nq=5):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(ns, ed)),
        rng.normal(size=(ns, ed)),
        rng.normal(size=(nq, ed)),
    )


# --- process backend: bit-identity ------------------------------------------


@pytest.mark.process_pool
class TestProcessBackendBitIdentity:
    @pytest.mark.parametrize("num_workers", (1, 2, 4))
    @pytest.mark.parametrize("policy", ("contiguous", "strided"))
    def test_process_solver_matches_serial_bitwise(self, num_workers, policy):
        m_in, m_out, u = _random_memories()
        serial = ShardedMemNN(
            m_in, m_out, num_shards=4, policy=policy, chunk=ChunkConfig(32)
        )
        process = ShardedMemNN(
            m_in,
            m_out,
            num_shards=4,
            policy=policy,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(backend="process", num_workers=num_workers),
        )
        try:
            np.testing.assert_array_equal(
                process.output(u).output, serial.output(u).output
            )
        finally:
            process.close()

    @pytest.mark.parametrize("num_workers", (1, 2, 4))
    def test_process_engine_matches_serial_bitwise(self, num_workers):
        serial = _answer(EngineConfig.sharded(4, chunk_size=16))
        process = _answer(
            EngineConfig.sharded(4, chunk_size=16).with_execution(
                backend="process", num_workers=num_workers
            )
        )
        np.testing.assert_array_equal(process.logits, serial.logits)
        np.testing.assert_array_equal(process.answer_ids, serial.answer_ids)

    def test_process_per_shard_partials_match_serial_bitwise(self):
        """Shard order, not completion order: every per-shard triple is
        identical, so any downstream fold sees identical inputs."""
        m_in, m_out, u = _random_memories(seed=3)
        serial = ShardedMemNN(m_in, m_out, num_shards=4, chunk=ChunkConfig(32))
        process = ShardedMemNN(
            m_in,
            m_out,
            num_shards=4,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(backend="process", num_workers=4),
        )
        try:
            for (pa, sa), (pb, sb) in zip(
                serial.shard_partials(u), process.shard_partials(u)
            ):
                np.testing.assert_array_equal(pa.weighted, pb.weighted)
                np.testing.assert_array_equal(pa.denom, pb.denom)
                np.testing.assert_array_equal(pa.log_max, pb.log_max)
                assert sa == sb
        finally:
            process.close()

    @pytest.mark.parametrize(
        "zero_skip",
        (ZeroSkipConfig(1e-4, mode="exp"), ZeroSkipConfig(1e-4, mode="probability")),
    )
    def test_process_zero_skip_matches_serial_bitwise(self, zero_skip):
        """Both skip modes: the workers run the identical per-shard
        kernel, so even the geometry-sensitive probability mode makes
        the identical keep decisions."""
        m_in, m_out, u = _random_memories(seed=5)
        serial = ShardedMemNN(m_in, m_out, num_shards=3, chunk=ChunkConfig(32))
        process = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(backend="process", num_workers=2),
        )
        try:
            np.testing.assert_array_equal(
                process.output(u, zero_skip=zero_skip).output,
                serial.output(u, zero_skip=zero_skip).output,
            )
        finally:
            process.close()

    def test_process_float32_matches_serial_float32_bitwise(self):
        m_in, m_out, u = _random_memories(seed=7)
        serial = ShardedMemNN(
            m_in, m_out, num_shards=3, chunk=ChunkConfig(32), dtype=np.float32
        )
        process = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            dtype=np.float32,
            execution=ExecutionConfig(
                backend="process", num_workers=2, dtype="float32"
            ),
        )
        try:
            np.testing.assert_array_equal(
                process.output(u).output, serial.output(u).output
            )
        finally:
            process.close()

    def test_process_over_spilled_store_matches_out_of_core_serial(self, tmp_path):
        """Engine-level: mmap store + process backend reuses the spill
        (no second copy) and still equals the serial out-of-core path
        bitwise."""
        base = EngineConfig.out_of_core(
            path=str(tmp_path / "store"), num_shards=3, chunk_size=16
        )
        serial = _answer(base)
        process = _answer(
            base.with_execution(backend="process", num_workers=2)
        )
        np.testing.assert_array_equal(process.logits, serial.logits)

    def test_mutation_invalidates_process_solver(self):
        """store_story after a process answer closes the old pool and
        the next answer reflects the new memories."""
        config, weights, story, questions = _problem()
        engine_config = EngineConfig.sharded(2, chunk_size=16).with_execution(
            backend="process", num_workers=2
        )
        engine = MnnFastEngine(config, weights, engine_config=engine_config)
        engine.store_story(story)
        first = engine.answer(questions)
        engine.store_story(story[:10])
        second = engine.answer(questions)
        assert not np.array_equal(first.logits, second.logits)
        reference = MnnFastEngine(
            config, weights, engine_config=EngineConfig.sharded(2, chunk_size=16)
        )
        reference.store_story(story)
        reference.store_story(story[:10])
        np.testing.assert_array_equal(
            second.logits, reference.answer(questions).logits
        )
        engine.close()


# --- process backend: failure surface ----------------------------------------


@pytest.mark.process_pool
class TestProcessWorkerCrash:
    def test_dead_worker_raises_cleanly_and_pool_recovers(self):
        m_in, m_out, u = _random_memories()
        solver = ShardedMemNN(
            m_in,
            m_out,
            num_shards=4,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(backend="process", num_workers=2),
        )
        try:
            expected = solver.output(u).output  # warm the pool
            assert solver._runner is not None
            pool = solver._runner._pool
            assert pool is not None
            for process in pool._processes.values():
                os.kill(process.pid, signal.SIGKILL)
            # Give the OS a moment to reap so the pool notices.
            time.sleep(0.1)
            with pytest.raises(RuntimeError, match="worker process died"):
                solver.output(u)
            # The spill survives the pool teardown: the next request
            # rebuilds the pool and answers identically.
            np.testing.assert_array_equal(solver.output(u).output, expected)
        finally:
            solver.close()

    def test_process_backend_rejects_unmappable_store(self):
        from repro.store import ResidentStore

        m_in, m_out, _ = _random_memories()
        with pytest.raises(ValueError, match="MmapStore"):
            ShardedMemNN(
                store=ResidentStore(m_in, m_out),
                num_shards=2,
                execution=ExecutionConfig(backend="process", num_workers=2),
            )


# --- fused tile kernel --------------------------------------------------------


class TestFusedKernel:
    @pytest.mark.parametrize("policy", ("contiguous", "strided"))
    @pytest.mark.parametrize("num_shards", (1, 3, 4))
    @pytest.mark.parametrize(
        "zero_skip", (None, ZeroSkipConfig(1e-4, mode="exp"))
    )
    @pytest.mark.parametrize("stable", (True, False))
    def test_fused_matches_per_shard(self, policy, num_shards, zero_skip, stable):
        m_in, m_out, u = _random_memories()
        serial = ShardedMemNN(
            m_in, m_out, num_shards=num_shards, policy=policy, chunk=ChunkConfig(32)
        )
        fused = ShardedMemNN(
            m_in,
            m_out,
            num_shards=num_shards,
            policy=policy,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(fused=True),
        )
        ref = serial.output(u, zero_skip=zero_skip, stable=stable)
        got = fused.output(u, zero_skip=zero_skip, stable=stable)
        np.testing.assert_allclose(
            got.output, ref.output, rtol=LOGIT_TOLERANCE, atol=LOGIT_TOLERANCE
        )
        # The op ledger is arrangement-independent (exp-mode masks
        # match exactly, so even rows_computed agrees).
        assert got.stats.flops == ref.stats.flops
        assert got.stats.rows_computed == ref.stats.rows_computed

    def test_fused_over_mmap_store_matches_resident_fused(self, tmp_path):
        m_in, m_out, u = _random_memories()
        store = MmapStore.save(tmp_path / "store", m_in, m_out)
        resident = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(fused=True),
        )
        streamed = ShardedMemNN(
            store=store,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(fused=True),
        )
        np.testing.assert_array_equal(
            streamed.output(u).output, resident.output(u).output
        )
        assert streamed.store_stats is not None
        assert streamed.store_stats.disk_bytes > 0

    @pytest.mark.parametrize("dtype", ("float64", "float32"))
    def test_fused_engine_matches_serial_engine(self, dtype):
        serial = _answer(
            EngineConfig.sharded(4, chunk_size=16).with_execution(dtype=dtype)
        )
        fused = _answer(
            EngineConfig.fused(4, chunk_size=16, dtype=dtype)
        )
        tolerance = 1e-4 if dtype == "float32" else LOGIT_TOLERANCE
        np.testing.assert_allclose(
            fused.logits, serial.logits, rtol=tolerance, atol=tolerance
        )
        np.testing.assert_array_equal(fused.answer_ids, serial.answer_ids)

    def test_fused_with_topk_tier_matches_serial_topk(self):
        base = EngineConfig.sharded(3, chunk_size=16).with_topk(
            nprobe=2, min_rows=16
        )
        serial = _answer(base)
        fused = _answer(base.with_execution(fused=True))
        np.testing.assert_allclose(
            fused.logits, serial.logits, rtol=LOGIT_TOLERANCE, atol=LOGIT_TOLERANCE
        )

    def test_fused_empty_shards_contribute_identity(self):
        """K > ns leaves trailing shards empty; their partials are the
        merge identity and the output is unchanged."""
        m_in, m_out, u = _random_memories(ns=5)
        serial = ShardedMemNN(m_in, m_out, num_shards=8, chunk=ChunkConfig(4))
        fused = ShardedMemNN(
            m_in,
            m_out,
            num_shards=8,
            chunk=ChunkConfig(4),
            execution=ExecutionConfig(fused=True),
        )
        np.testing.assert_allclose(
            fused.output(u).output,
            serial.output(u).output,
            rtol=LOGIT_TOLERANCE,
            atol=LOGIT_TOLERANCE,
        )


class TestFusedTileRows:
    def test_default_tile_equals_explicit_chunk_geometry_bitwise(self):
        """``fused_tile_rows=None`` keeps the historical
        ``chunk_size x num_shards`` geometry — an explicit value equal
        to it must produce the identical tile sweep, bit for bit."""
        m_in, m_out, u = _random_memories()
        default = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(fused=True),
        )
        explicit = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(fused=True, fused_tile_rows=32 * 3),
        )
        np.testing.assert_array_equal(
            explicit.output(u).output, default.output(u).output
        )

    @pytest.mark.parametrize("tile_rows", (1, 7, 64, 10_000))
    def test_tile_size_only_moves_rescale_boundaries(self, tile_rows):
        """Any tile size agrees with any other to the documented 1e-10
        (same class of difference as a chunk-size change), including a
        degenerate 1-row tile and one larger than the whole memory."""
        m_in, m_out, u = _random_memories()
        reference = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(fused=True),
        )
        tiled = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(fused=True, fused_tile_rows=tile_rows),
        )
        got = tiled.output(u)
        np.testing.assert_allclose(
            got.output,
            reference.output(u).output,
            rtol=LOGIT_TOLERANCE,
            atol=LOGIT_TOLERANCE,
        )
        assert got.stats.flops == reference.output(u).stats.flops

    def test_tile_rows_engine_answer_matches_default(self):
        default = _answer(EngineConfig.fused(4, chunk_size=16))
        tiled = _answer(EngineConfig.fused(4, chunk_size=16, tile_rows=48))
        np.testing.assert_allclose(
            tiled.logits,
            default.logits,
            rtol=LOGIT_TOLERANCE,
            atol=LOGIT_TOLERANCE,
        )
        np.testing.assert_array_equal(tiled.answer_ids, default.answer_ids)


# --- fold-order invariance (property) ----------------------------------------


class TestFoldOrderInvariance:
    @given(
        seed=st.integers(0, 2**16),
        num_shards=st.integers(1, 6),
        policy=st.sampled_from(("contiguous", "strided")),
        backend=st.sampled_from(("serial", "thread", "fused")),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_fold_order_invariant_under_backend(
        self, seed, num_shards, policy, backend, data
    ):
        """Folding the per-shard partials in any order agrees with the
        shard-order fold to 1e-10, whichever backend produced them —
        the associativity/commutativity the scale-out story rests on.
        (The process backend produces bitwise-identical partials to
        serial — asserted by the differential tests — so it inherits
        this property without paying a pool per hypothesis example.)
        """
        rng = np.random.default_rng(seed)
        ns = int(rng.integers(1, 40))
        ed = int(rng.integers(1, 8))
        nq = int(rng.integers(1, 4))
        m_in = rng.uniform(-5, 5, size=(ns, ed))
        m_out = rng.uniform(-5, 5, size=(ns, ed))
        u = rng.uniform(-5, 5, size=(nq, ed))
        if backend == "fused":
            execution = ExecutionConfig(fused=True)
        elif backend == "thread":
            execution = ExecutionConfig(backend="thread", num_workers=2)
        else:
            execution = ExecutionConfig()
        solver = ShardedMemNN(
            m_in,
            m_out,
            num_shards=num_shards,
            policy=policy,
            chunk=ChunkConfig(8),
            execution=execution,
        )
        pairs = solver.shard_partials(u)
        assert len(pairs) == num_shards
        order = data.draw(st.permutations(range(num_shards)))
        merged = pairs[0][0]
        for partial, _ in pairs[1:]:
            merged = merged.merge(partial)
        shuffled = pairs[order[0]][0]
        for index in order[1:]:
            shuffled = shuffled.merge(pairs[index][0])
        np.testing.assert_allclose(
            shuffled.finalize(),
            merged.finalize(),
            rtol=LOGIT_TOLERANCE,
            atol=LOGIT_TOLERANCE,
        )


# --- configuration surface ----------------------------------------------------


class TestMulticoreConfig:
    def test_fused_requires_serial_backend(self):
        with pytest.raises(ValueError, match="fused"):
            ExecutionConfig(backend="thread", num_workers=2, fused=True)
        with pytest.raises(ValueError, match="fused"):
            ExecutionConfig(backend="process", num_workers=2, fused=True)

    def test_fused_requires_sharded_algorithm(self):
        config = EngineConfig(
            algorithm="column", execution=ExecutionConfig(fused=True)
        )
        with pytest.raises(ValueError, match="sharded"):
            config.validate()

    def test_blas_threads_must_be_positive(self):
        with pytest.raises(ValueError, match="blas_threads"):
            ExecutionConfig(blas_threads=0)
        assert ExecutionConfig(blas_threads=2).blas_threads == 2

    def test_worker_blas_threads_default_pins_process_workers(self):
        """Parallel process workers pin BLAS to 1 thread unless told
        otherwise — P workers never fan out P x T BLAS threads."""
        parallel = ExecutionConfig(backend="process", num_workers=4)
        assert parallel.worker_blas_threads() == 1
        explicit = ExecutionConfig(
            backend="process", num_workers=4, blas_threads=2
        )
        assert explicit.worker_blas_threads() == 2
        solo = ExecutionConfig(backend="process", num_workers=1)
        assert solo.worker_blas_threads() is None
        assert ExecutionConfig().worker_blas_threads() is None

    def test_shard_concurrency_reflects_measured_backends(self):
        assert ExecutionConfig().shard_concurrency() == 1
        # Thread backend measured 0.79-0.99x vs serial: concurrency 1.
        assert (
            ExecutionConfig(backend="thread", num_workers=4).shard_concurrency()
            == 1
        )
        assert (
            ExecutionConfig(backend="process", num_workers=4).shard_concurrency()
            == 4
        )

    def test_multicore_preset_composition(self):
        config = EngineConfig.multicore(4)
        assert config.algorithm == "sharded"
        assert config.execution.backend == "process"
        assert config.execution.num_workers == 4
        assert config.execution.dtype == "float32"

    def test_fused_preset_composition(self):
        config = EngineConfig.fused(4)
        assert config.algorithm == "sharded"
        assert config.num_shards == 4
        assert config.execution.fused
        assert config.execution.backend == "serial"
        assert config.execution.fused_tile_rows is None

    def test_fused_preset_tile_rows_plumbs_through(self):
        config = EngineConfig.fused(4, tile_rows=512)
        assert config.execution.fused_tile_rows == 512

    def test_tile_rows_requires_fused(self):
        with pytest.raises(ValueError, match="fused_tile_rows"):
            ExecutionConfig(fused_tile_rows=256)

    def test_tile_rows_must_be_positive(self):
        for bad in (0, -1, 2.5):
            with pytest.raises(ValueError, match="fused_tile_rows"):
                ExecutionConfig(fused=True, fused_tile_rows=bad)


# --- BLAS thread-limit shim ---------------------------------------------------


class TestThreadLimits:
    def test_apply_blas_limit_reports_control_layer(self):
        layer = apply_blas_limit(1)
        assert layer in ("threadpoolctl", "openblas-ctypes", "env", "noop")
        assert os.environ.get("OMP_NUM_THREADS") == "1"

    def test_blas_thread_info_shape(self):
        info = blas_thread_info()
        assert set(info) == {"implementation", "max_threads", "control"}


# --- BENCH_core.json schema ---------------------------------------------------


def _core_payload(cpu_count, gate):
    """A minimal BENCH_core.json payload with the machine description
    and every required series present."""
    series = {
        name: 0.01
        for name in (
            "seed_column", "column_serial", "sharded_serial", "fused_serial",
            "fused_f32",
            "sharded_process_1", "sharded_process_2", "sharded_process_4",
        )
    }
    return {
        "smoke": True,
        "cpu_count": cpu_count,
        "blas": {"implementation": "openblas", "max_threads": 1,
                 "control": "openblas-ctypes"},
        "worker_blas_threads": 1,
        "series_seconds": series,
        "parallel_gate": gate,
    }


class TestCoreArtifactSchema:
    """The validator must honor an explicit small-runner skip and
    reject both vacuous skips and regressed parallel ratios."""

    def test_explicit_skip_on_small_runner_is_accepted(self):
        payload = _core_payload(1, {
            "required_cpus": 4,
            "skipped_reason": "only 1 CPU(s) visible; parallel speedup "
            "gates require >= 4 physical cores",
        })
        assert _validate_core(payload) == []

    def test_vacuous_skip_on_big_runner_is_rejected(self):
        payload = _core_payload(8, {
            "required_cpus": 4,
            "skipped_reason": "only 1 CPU(s) visible",
        })
        assert any(
            "skipped on a 8-CPU host" in p for p in _validate_core(payload)
        )

    def test_enforced_gate_rejects_regressed_process_ratio(self):
        payload = _core_payload(8, {
            "required_cpus": 4,
            "process_vs_serial": {"1": 1.0, "2": 1.4, "4": 0.7},
            "fused_vs_serial": 1.1,
            "baseline_headline": 1.38,
            "headline_speedup": 2.5,
        })
        assert any(
            "4 workers lost to serial" in p for p in _validate_core(payload)
        )

    def test_enforced_gate_rejects_headline_below_baseline(self):
        payload = _core_payload(8, {
            "required_cpus": 4,
            "process_vs_serial": {"1": 1.0, "2": 1.4, "4": 2.1},
            "fused_vs_serial": 1.1,
            "baseline_headline": 1.38,
            "headline_speedup": 1.2,
        })
        assert any(
            "must beat the recorded" in p for p in _validate_core(payload)
        )

    def test_enforced_gate_passing_payload_is_clean(self):
        payload = _core_payload(8, {
            "required_cpus": 4,
            "process_vs_serial": {"1": 1.0, "2": 1.4, "4": 2.1},
            "fused_vs_serial": 1.1,
            "baseline_headline": 1.38,
            "headline_speedup": 2.5,
        })
        assert _validate_core(payload) == []

    def test_missing_machine_description_is_rejected(self):
        payload = _core_payload(1, {"required_cpus": 4, "skipped_reason": "x"})
        del payload["blas"]
        del payload["worker_blas_threads"]
        problems = _validate_core(payload)
        assert any("blas" in p for p in problems)
        assert any("worker_blas_threads" in p for p in problems)
