"""Round-trip tests for model / engine-weight serialization."""

import numpy as np
import pytest

from repro.core.engine import EngineWeights
from repro.model import MemN2N, MemN2NConfig, to_engine_weights
from repro.model.serialize import (
    load_engine_weights,
    load_model,
    save_engine_weights,
    save_model,
)


@pytest.fixture
def model(rng):
    cfg = MemN2NConfig(
        vocab_size=12, embedding_dim=6, hops=2, max_sentences=5, max_words=4
    )
    return MemN2N(cfg, rng=np.random.default_rng(5))


class TestModelRoundTrip:
    def test_parameters_identical(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        for a, b in zip(model.embeddings, restored.embeddings):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(model.temporal, restored.temporal):
            np.testing.assert_array_equal(a, b)

    def test_config_identical(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(model, path)
        assert load_model(path).config == model.config

    def test_restored_model_predicts_identically(self, model, tmp_path, rng):
        stories = rng.integers(0, 12, size=(3, 5, 4))
        questions = rng.integers(1, 12, size=(3, 4))
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.forward(stories, questions).logits,
            model.forward(stories, questions).logits,
        )

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(ValueError, match="MemN2N"):
            load_model(path)


class TestEngineWeightsRoundTrip:
    def test_layerwise_round_trip(self, tmp_path, rng):
        weights = EngineWeights(
            embedding_a=rng.normal(size=(8, 4)),
            embedding_c=rng.normal(size=(8, 4)),
            answer_weight=rng.normal(size=(8, 4)),
        )
        path = tmp_path / "weights.npz"
        save_engine_weights(weights, path)
        restored = load_engine_weights(path)
        assert restored.hop_tables is None
        np.testing.assert_array_equal(restored.embedding_a, weights.embedding_a)

    def test_adjacent_round_trip(self, model, tmp_path):
        exported = to_engine_weights(
            MemN2N(
                MemN2NConfig(
                    vocab_size=12, embedding_dim=6, hops=2,
                    max_sentences=5, max_words=4,
                    use_temporal_encoding=False,
                )
            )
        )
        path = tmp_path / "weights.npz"
        save_engine_weights(exported, path)
        restored = load_engine_weights(path)
        assert restored.num_hops == exported.num_hops
        for a, b in zip(restored.hop_tables, exported.hop_tables):
            np.testing.assert_array_equal(a, b)

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, nothing=np.zeros(2))
        with pytest.raises(ValueError, match="EngineWeights"):
            load_engine_weights(path)
