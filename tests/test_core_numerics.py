"""Unit tests for repro.core.numerics."""

import numpy as np
import pytest

from repro.core.numerics import (
    PAD_ID,
    bow_embed,
    position_encoding,
    softmax,
    unstable_softmax,
)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0)

    def test_matches_definition(self, rng):
        x = rng.normal(size=10)
        expected = np.exp(x) / np.exp(x).sum()
        np.testing.assert_allclose(softmax(x), expected)

    def test_stable_for_huge_scores(self):
        x = np.array([1000.0, 1001.0, 999.0])
        p = softmax(x)
        assert np.all(np.isfinite(p))
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_unstable_overflows_for_huge_scores(self):
        # Documents the paper-faithful Eq. (1) behaviour the stable
        # variant exists to fix.
        with np.errstate(over="ignore", invalid="ignore"):
            p = unstable_softmax(np.array([1000.0, 1001.0]))
        assert not np.all(np.isfinite(p))

    def test_agreement_in_safe_range(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(softmax(x), unstable_softmax(x))

    def test_shift_invariance(self, rng):
        x = rng.normal(size=8)
        np.testing.assert_allclose(softmax(x), softmax(x + 123.0))

    def test_axis_argument(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(x, axis=0).sum(axis=0), 1.0)


class TestBowEmbed:
    def test_sums_word_vectors(self, rng):
        emb = rng.normal(size=(10, 4))
        emb[PAD_ID] = 0.0
        sent = np.array([[1, 2, 3]])
        np.testing.assert_allclose(bow_embed(emb, sent)[0], emb[1] + emb[2] + emb[3])

    def test_padding_contributes_zero(self, rng):
        emb = rng.normal(size=(10, 4))  # pad row deliberately nonzero
        padded = np.array([[1, 2, PAD_ID, PAD_ID]])
        unpadded = np.array([[1, 2]])
        np.testing.assert_allclose(bow_embed(emb, padded), bow_embed(emb, unpadded))

    def test_batch_shape(self, rng):
        emb = rng.normal(size=(10, 4))
        out = bow_embed(emb, np.array([[1, 2], [3, 4], [5, 6]]))
        assert out.shape == (3, 4)

    def test_rejects_out_of_range_ids(self, rng):
        emb = rng.normal(size=(10, 4))
        with pytest.raises(ValueError, match="out of range"):
            bow_embed(emb, np.array([[11]]))

    def test_rejects_1d_input(self, rng):
        emb = rng.normal(size=(10, 4))
        with pytest.raises(ValueError, match="2-D"):
            bow_embed(emb, np.array([1, 2]))

    def test_position_encoding_weights_words(self, rng):
        emb = rng.normal(size=(10, 4))
        enc = position_encoding(2, 4)
        sent = np.array([[1, 2]])
        expected = emb[1] * enc[0] + emb[2] * enc[1]
        np.testing.assert_allclose(bow_embed(emb, sent, enc)[0], expected)

    def test_encoding_shape_validated(self, rng):
        emb = rng.normal(size=(10, 4))
        with pytest.raises(ValueError, match="encoding"):
            bow_embed(emb, np.array([[1, 2]]), position_encoding(3, 4))


class TestPositionEncoding:
    def test_shape(self):
        assert position_encoding(6, 20).shape == (6, 20)

    def test_matches_sukhbaatar_formula(self):
        enc = position_encoding(4, 3)
        j, k, big_j, big_d = 2, 1, 4.0, 3.0
        expected = (1 - j / big_j) - (k / big_d) * (1 - 2 * j / big_j)
        assert enc[j - 1, k - 1] == pytest.approx(expected)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            position_encoding(0, 5)
