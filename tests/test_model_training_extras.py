"""Tests for joint training and the accuracy-table driver."""

import pytest

from repro.analysis import accuracy_table
from repro.model import train_jointly


class TestJointTraining:
    def test_joint_model_learns_multiple_tasks(self):
        trainer, accuracies, vocab = train_jointly(
            task_ids=(1, 15), examples_per_task=200,
            test_examples_per_task=40, epochs=25,
        )
        assert set(accuracies) == {1, 15}
        # A shared model must still learn both easy tasks.
        assert accuracies[1] > 0.6
        assert accuracies[15] > 0.6

    def test_shared_vocabulary_covers_all_tasks(self):
        _, _, vocab = train_jointly(
            task_ids=(4, 20), examples_per_task=40,
            test_examples_per_task=10, epochs=2,
        )
        assert "north" in vocab      # task 4 word
        assert "hungry" in vocab     # task 20 word

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            train_jointly(task_ids=())


class TestAccuracyTable:
    def test_subset_runs_and_reports(self):
        rows = accuracy_table(
            task_ids=(1, 15), train_examples=150, test_examples=30, epochs=12
        )
        assert [r.task_id for r in rows] == [1, 15]
        for row in rows:
            assert 0.0 <= row.test_accuracy <= 1.0
            assert row.train_accuracy >= row.test_accuracy - 0.3
            assert row.name

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            accuracy_table(task_ids=(99,), epochs=1)
