"""Property-based tests (hypothesis) for the core algorithms.

These encode the paper's correctness invariants:

* Eq. (4) equals Eq. (3) for *any* memory contents and chunking.
* Partial outputs form a commutative monoid under merge.
* Zero-skipping is monotone in its threshold.
* The early-exit gate's exit sets are nested in the threshold, ragged
  batches fold exactly like per-question passes, and retiring rows
  never perturbs the survivors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    BaselineMemNN,
    ChunkConfig,
    ColumnMemNN,
    EngineConfig,
    EngineWeights,
    MemNNConfig,
    MnnFastEngine,
    ZeroSkipConfig,
    merge_partials,
    partition_memory,
    softmax,
)
from repro.core.early_exit import EXIT_FULL_DEPTH

# Bounded floats keep exp() in a comfortable range for the equality
# tests; the stability tests in test_core_algorithms cover the extremes.
value = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


def memory_pair(ns: int, ed: int):
    shape = (ns, ed)
    return st.tuples(
        arrays(np.float64, shape, elements=value),
        arrays(np.float64, shape, elements=value),
    )


@st.composite
def problem(draw):
    ns = draw(st.integers(min_value=1, max_value=40))
    ed = draw(st.integers(min_value=1, max_value=8))
    nq = draw(st.integers(min_value=1, max_value=4))
    m_in, m_out = draw(memory_pair(ns, ed))
    u = draw(arrays(np.float64, (nq, ed), elements=value))
    chunk = draw(st.integers(min_value=1, max_value=ns))
    return m_in, m_out, u, chunk


@settings(max_examples=60, deadline=None)
@given(problem())
def test_column_equals_baseline(data):
    m_in, m_out, u, chunk = data
    base = BaselineMemNN(m_in, m_out).output(u).output
    col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u
    ).output
    np.testing.assert_allclose(col, base, rtol=1e-9, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(problem())
def test_column_matches_closed_form(data):
    m_in, m_out, u, chunk = data
    col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u
    ).output
    expected = softmax(u @ m_in.T) @ m_out
    np.testing.assert_allclose(col, expected, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(problem(), st.integers(min_value=1, max_value=5))
def test_sharded_merge_equals_whole(data, parts):
    m_in, m_out, u, chunk = data
    parts = min(parts, m_in.shape[0])
    whole = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u
    ).output
    partials = [
        shard.partial_output(u)[0]
        for shard in partition_memory(
            m_in, m_out, parts, chunk=ChunkConfig(chunk_size=chunk)
        )
    ]
    np.testing.assert_allclose(
        merge_partials(partials).finalize(), whole, rtol=1e-9, atol=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(problem())
def test_merge_order_does_not_matter(data):
    m_in, m_out, u, _ = data
    if m_in.shape[0] < 3:
        return
    shards = list(partition_memory(m_in, m_out, parts=3))
    a, b, c = (s.partial_output(u)[0] for s in shards)
    left = a.merge(b).merge(c).finalize()
    right = a.merge(b.merge(c)).finalize()
    np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    problem(),
    st.floats(min_value=0.001, max_value=0.2),
    st.floats(min_value=1.5, max_value=5.0),
)
def test_zero_skip_monotone_in_threshold(data, threshold, factor):
    """A higher threshold never computes more weighted-sum rows."""
    m_in, m_out, u, chunk = data
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk))
    low = engine.output(
        u, zero_skip=ZeroSkipConfig(threshold, mode="probability")
    ).stats
    high = engine.output(
        u, zero_skip=ZeroSkipConfig(min(threshold * factor, 0.999), mode="probability")
    ).stats
    assert high.rows_computed <= low.rows_computed


@settings(max_examples=40, deadline=None)
@given(problem(), st.floats(min_value=0.001, max_value=0.5))
def test_exp_mode_skip_identical_across_engines(data, threshold):
    m_in, m_out, u, chunk = data
    cfg = ZeroSkipConfig(threshold, mode="exp")
    base = BaselineMemNN(m_in, m_out).output(u, zero_skip=cfg)
    col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u, zero_skip=cfg
    )
    assert base.stats.rows_skipped == col.stats.rows_skipped
    np.testing.assert_allclose(col.output, base.output, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(problem())
def test_probabilities_form_distribution(data):
    m_in, m_out, u, _ = data
    probs = BaselineMemNN(m_in, m_out).output(
        u, return_probabilities=True
    ).probabilities
    assert np.all(probs >= 0.0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)


# --- multi-question (nq > 1) partials: the batched-path invariants ---------
#
# answer_batch() rests on PartialOutput being row-independent over the
# question axis: a batch of nq questions folds through the same shard
# merges as each question alone, in any shard order or grouping.


@st.composite
def multiq_problem(draw):
    """A problem with at least two questions and two shards."""
    ns = draw(st.integers(min_value=2, max_value=40))
    ed = draw(st.integers(min_value=1, max_value=8))
    nq = draw(st.integers(min_value=2, max_value=6))
    m_in, m_out = draw(memory_pair(ns, ed))
    u = draw(arrays(np.float64, (nq, ed), elements=value))
    parts = draw(st.integers(min_value=2, max_value=min(5, ns)))
    return m_in, m_out, u, parts


@settings(max_examples=40, deadline=None)
@given(multiq_problem(), st.randoms(use_true_random=False))
def test_multiquestion_merge_shard_order_invariant(data, rnd):
    """Merging nq>1 partials in any shard order gives the same fold."""
    m_in, m_out, u, parts = data
    partials = [
        s.partial_output(u)[0] for s in partition_memory(m_in, m_out, parts)
    ]
    reference = merge_partials(partials).finalize()
    shuffled = list(partials)
    rnd.shuffle(shuffled)
    np.testing.assert_allclose(
        merge_partials(shuffled).finalize(), reference, rtol=1e-9, atol=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(multiq_problem(), st.integers(min_value=1, max_value=4))
def test_multiquestion_merge_grouping_invariant(data, split):
    """((a·b)·(c·d)) == (((a·b)·c)·d) for nq>1 partials — merge is
    associative, so any tree shape folds to the same batch output."""
    m_in, m_out, u, parts = data
    partials = [
        s.partial_output(u)[0] for s in partition_memory(m_in, m_out, parts)
    ]
    split = min(split, len(partials) - 1)
    sequential = merge_partials(partials).finalize()
    grouped = merge_partials(
        [merge_partials(partials[:split]), merge_partials(partials[split:])]
    ).finalize()
    np.testing.assert_allclose(grouped, sequential, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(multiq_problem())
def test_multiquestion_partials_row_independent(data):
    """Each question's row of the batched fold equals the fold of that
    question alone — the invariant answer_batch() is built on."""
    m_in, m_out, u, parts = data
    shards = list(partition_memory(m_in, m_out, parts))
    batch = merge_partials(
        [s.partial_output(u)[0] for s in shards]
    ).finalize()
    for i in range(u.shape[0]):
        solo = merge_partials(
            [s.partial_output(u[i : i + 1])[0] for s in shards]
        ).finalize()
        np.testing.assert_allclose(
            batch[i : i + 1], solo, rtol=1e-10, atol=1e-12
        )


# --- early-exit gate: hop-depth and ragged-batch invariants -----------------
#
# The confidence gate retires questions mid-network.  Three properties
# hold for *any* weights, stories and threshold:
#
# * exit sets are nested — raising the threshold never makes any
#   question run MORE hops (the gate fires at `confidence >= 1 - th`,
#   and confidence per hop is threshold-independent);
# * a gated batch folds exactly like gated per-question passes — the
#   ragged row-retirement bookkeeping is invisible in the numbers;
# * rows that never exit are untouched by their neighbours retiring —
#   survivors' logits equal the ungated engine's logits.


@st.composite
def gated_problem(draw):
    """A seeded engine problem with margins large enough that the gate
    actually fires for a decent fraction of drawn thresholds."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    hops = draw(st.integers(min_value=2, max_value=4))
    nq = draw(st.integers(min_value=2, max_value=6))
    num_answers = draw(st.integers(min_value=2, max_value=6))
    rng = np.random.default_rng(seed)
    config = MemNNConfig(
        embedding_dim=8,
        num_sentences=30,
        num_questions=nq,
        vocab_size=40,
        max_words=5,
        hops=hops,
    )
    weights = EngineWeights(
        embedding_a=rng.normal(0.0, 0.5, (40, 8)),
        embedding_c=rng.normal(0.0, 0.1, (40, 8)),
        answer_weight=rng.normal(0.0, 2.0, (num_answers, 8)),
    )
    story = rng.integers(1, 40, size=(30, 5))
    questions = rng.integers(1, 40, size=(nq, 5))
    return config, weights, story, questions


def _gated_answer(config, weights, story, questions, threshold):
    engine = MnnFastEngine(
        config,
        weights,
        engine_config=EngineConfig().with_early_exit(threshold),
    )
    engine.store_story(story)
    return engine.answer(questions)


@settings(max_examples=30, deadline=None)
@given(
    gated_problem(),
    st.floats(min_value=0.0, max_value=0.95),
    st.floats(min_value=0.0, max_value=0.95),
)
def test_exit_depth_monotone_in_threshold(data, t_a, t_b):
    """Raising the threshold never deepens any question's hop count."""
    config, weights, story, questions = data
    low, high = sorted((t_a, t_b))
    deep = _gated_answer(config, weights, story, questions, low)
    shallow = _gated_answer(config, weights, story, questions, high)
    assert np.all(
        np.asarray(shallow.hop_trace.hops_run)
        <= np.asarray(deep.hop_trace.hops_run)
    )


@settings(max_examples=30, deadline=None)
@given(gated_problem(), st.floats(min_value=0.0, max_value=0.95))
def test_gated_batch_equals_sequential(data, threshold):
    """A ragged gated batch is the per-question gated passes, exactly:
    same exit depths, same exit reasons, same logits."""
    config, weights, story, questions = data
    batch = _gated_answer(config, weights, story, questions, threshold)
    for i in range(questions.shape[0]):
        solo = _gated_answer(
            config, weights, story, questions[i : i + 1], threshold
        )
        assert solo.hop_trace.hops_run[0] == batch.hop_trace.hops_run[i]
        assert solo.hop_trace.exit_reason[0] == batch.hop_trace.exit_reason[i]
        np.testing.assert_allclose(
            batch.logits[i : i + 1], solo.logits, rtol=1e-10, atol=1e-12
        )


@settings(max_examples=30, deadline=None)
@given(gated_problem(), st.floats(min_value=0.01, max_value=0.95))
def test_retiring_rows_never_perturbs_survivors(data, threshold):
    """Questions that run to full depth are numerically untouched by
    their batch neighbours exiting early."""
    config, weights, story, questions = data
    gated = _gated_answer(config, weights, story, questions, threshold)
    full = _gated_answer(config, weights, story, questions, 0.0)
    survivors = [
        i
        for i, reason in enumerate(gated.hop_trace.exit_reason)
        if reason == EXIT_FULL_DEPTH
    ]
    for i in survivors:
        assert gated.hop_trace.hops_run[i] == config.hops
        np.testing.assert_allclose(
            gated.logits[i], full.logits[i], rtol=1e-10, atol=1e-12
        )
