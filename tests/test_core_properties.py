"""Property-based tests (hypothesis) for the core algorithms.

These encode the paper's correctness invariants:

* Eq. (4) equals Eq. (3) for *any* memory contents and chunking.
* Partial outputs form a commutative monoid under merge.
* Zero-skipping is monotone in its threshold.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    BaselineMemNN,
    ChunkConfig,
    ColumnMemNN,
    ZeroSkipConfig,
    merge_partials,
    partition_memory,
    softmax,
)

# Bounded floats keep exp() in a comfortable range for the equality
# tests; the stability tests in test_core_algorithms cover the extremes.
value = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


def memory_pair(ns: int, ed: int):
    shape = (ns, ed)
    return st.tuples(
        arrays(np.float64, shape, elements=value),
        arrays(np.float64, shape, elements=value),
    )


@st.composite
def problem(draw):
    ns = draw(st.integers(min_value=1, max_value=40))
    ed = draw(st.integers(min_value=1, max_value=8))
    nq = draw(st.integers(min_value=1, max_value=4))
    m_in, m_out = draw(memory_pair(ns, ed))
    u = draw(arrays(np.float64, (nq, ed), elements=value))
    chunk = draw(st.integers(min_value=1, max_value=ns))
    return m_in, m_out, u, chunk


@settings(max_examples=60, deadline=None)
@given(problem())
def test_column_equals_baseline(data):
    m_in, m_out, u, chunk = data
    base = BaselineMemNN(m_in, m_out).output(u).output
    col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u
    ).output
    np.testing.assert_allclose(col, base, rtol=1e-9, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(problem())
def test_column_matches_closed_form(data):
    m_in, m_out, u, chunk = data
    col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u
    ).output
    expected = softmax(u @ m_in.T) @ m_out
    np.testing.assert_allclose(col, expected, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(problem(), st.integers(min_value=1, max_value=5))
def test_sharded_merge_equals_whole(data, parts):
    m_in, m_out, u, chunk = data
    parts = min(parts, m_in.shape[0])
    whole = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u
    ).output
    partials = [
        shard.partial_output(u)[0]
        for shard in partition_memory(
            m_in, m_out, parts, chunk=ChunkConfig(chunk_size=chunk)
        )
    ]
    np.testing.assert_allclose(
        merge_partials(partials).finalize(), whole, rtol=1e-9, atol=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(problem())
def test_merge_order_does_not_matter(data):
    m_in, m_out, u, _ = data
    if m_in.shape[0] < 3:
        return
    shards = list(partition_memory(m_in, m_out, parts=3))
    a, b, c = (s.partial_output(u)[0] for s in shards)
    left = a.merge(b).merge(c).finalize()
    right = a.merge(b.merge(c)).finalize()
    np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    problem(),
    st.floats(min_value=0.001, max_value=0.2),
    st.floats(min_value=1.5, max_value=5.0),
)
def test_zero_skip_monotone_in_threshold(data, threshold, factor):
    """A higher threshold never computes more weighted-sum rows."""
    m_in, m_out, u, chunk = data
    engine = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk))
    low = engine.output(
        u, zero_skip=ZeroSkipConfig(threshold, mode="probability")
    ).stats
    high = engine.output(
        u, zero_skip=ZeroSkipConfig(min(threshold * factor, 0.999), mode="probability")
    ).stats
    assert high.rows_computed <= low.rows_computed


@settings(max_examples=40, deadline=None)
@given(problem(), st.floats(min_value=0.001, max_value=0.5))
def test_exp_mode_skip_identical_across_engines(data, threshold):
    m_in, m_out, u, chunk = data
    cfg = ZeroSkipConfig(threshold, mode="exp")
    base = BaselineMemNN(m_in, m_out).output(u, zero_skip=cfg)
    col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=chunk)).output(
        u, zero_skip=cfg
    )
    assert base.stats.rows_skipped == col.stats.rows_skipped
    np.testing.assert_allclose(col.output, base.output, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(problem())
def test_probabilities_form_distribution(data):
    m_in, m_out, u, _ = data
    probs = BaselineMemNN(m_in, m_out).output(
        u, return_probabilities=True
    ).probabilities
    assert np.all(probs >= 0.0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)


# --- multi-question (nq > 1) partials: the batched-path invariants ---------
#
# answer_batch() rests on PartialOutput being row-independent over the
# question axis: a batch of nq questions folds through the same shard
# merges as each question alone, in any shard order or grouping.


@st.composite
def multiq_problem(draw):
    """A problem with at least two questions and two shards."""
    ns = draw(st.integers(min_value=2, max_value=40))
    ed = draw(st.integers(min_value=1, max_value=8))
    nq = draw(st.integers(min_value=2, max_value=6))
    m_in, m_out = draw(memory_pair(ns, ed))
    u = draw(arrays(np.float64, (nq, ed), elements=value))
    parts = draw(st.integers(min_value=2, max_value=min(5, ns)))
    return m_in, m_out, u, parts


@settings(max_examples=40, deadline=None)
@given(multiq_problem(), st.randoms(use_true_random=False))
def test_multiquestion_merge_shard_order_invariant(data, rnd):
    """Merging nq>1 partials in any shard order gives the same fold."""
    m_in, m_out, u, parts = data
    partials = [
        s.partial_output(u)[0] for s in partition_memory(m_in, m_out, parts)
    ]
    reference = merge_partials(partials).finalize()
    shuffled = list(partials)
    rnd.shuffle(shuffled)
    np.testing.assert_allclose(
        merge_partials(shuffled).finalize(), reference, rtol=1e-9, atol=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(multiq_problem(), st.integers(min_value=1, max_value=4))
def test_multiquestion_merge_grouping_invariant(data, split):
    """((a·b)·(c·d)) == (((a·b)·c)·d) for nq>1 partials — merge is
    associative, so any tree shape folds to the same batch output."""
    m_in, m_out, u, parts = data
    partials = [
        s.partial_output(u)[0] for s in partition_memory(m_in, m_out, parts)
    ]
    split = min(split, len(partials) - 1)
    sequential = merge_partials(partials).finalize()
    grouped = merge_partials(
        [merge_partials(partials[:split]), merge_partials(partials[split:])]
    ).finalize()
    np.testing.assert_allclose(grouped, sequential, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(multiq_problem())
def test_multiquestion_partials_row_independent(data):
    """Each question's row of the batched fold equals the fold of that
    question alone — the invariant answer_batch() is built on."""
    m_in, m_out, u, parts = data
    shards = list(partition_memory(m_in, m_out, parts))
    batch = merge_partials(
        [s.partial_output(u)[0] for s in shards]
    ).finalize()
    for i in range(u.shape[0]):
        solo = merge_partials(
            [s.partial_output(u[i : i + 1])[0] for s in shards]
        ).finalize()
        np.testing.assert_allclose(
            batch[i : i + 1], solo, rtol=1e-10, atol=1e-12
        )
