"""Execution-backend invariance: parallelism and precision are pure
execution choices, never numeric ones.

The contract under test:

* the thread backend at any worker count produces the same numbers as
  serial execution (shard partials are collected in shard order, and
  the max-rescaled merge is associative over that order);
* ``num_workers=1`` on the thread backend is *bit-identical* to
  serial — same code path per shard, same merge;
* float32 is an accuracy/throughput trade documented by
  :data:`FLOAT32_LOGIT_TOLERANCE`, holding across every algorithm,
  zero-skip and softmax-form combination;
* the kernel short-circuits (skip-free keep mask, no-op rescale in
  :meth:`PartialOutput.merge`) are exact, not approximations.
"""

import itertools

import numpy as np
import pytest

from repro.core import (
    ChunkConfig,
    ColumnMemNN,
    EngineConfig,
    EngineWeights,
    ExecutionConfig,
    FLOAT32_LOGIT_TOLERANCE,
    MemNNConfig,
    MnnFastEngine,
    PartialOutput,
    ShardedMemNN,
    ZeroSkipConfig,
    partition_memory,
    run_shard_partials,
)

#: Exact-path agreement bound (same as the differential harness).
LOGIT_TOLERANCE = 1e-10


def _problem(seed=0):
    rng = np.random.default_rng(seed)
    config = MemNNConfig(
        embedding_dim=16,
        num_sentences=200,
        num_questions=4,
        vocab_size=60,
        max_words=6,
        hops=2,
    )
    weights = EngineWeights.random(config, rng=rng)
    story = rng.integers(1, 60, size=(53, 6))
    questions = rng.integers(1, 60, size=(4, 6))
    return config, weights, story, questions


def _answer(engine_config, seed=0):
    config, weights, story, questions = _problem(seed)
    engine = MnnFastEngine(config, weights, engine_config=engine_config)
    engine.store_story(story)
    return engine.answer(questions)


def _random_memories(seed=0, ns=300, ed=12, nq=5):
    rng = np.random.default_rng(seed)
    m_in = rng.normal(size=(ns, ed))
    m_out = rng.normal(size=(ns, ed))
    u = rng.normal(size=(nq, ed))
    return m_in, m_out, u


# --- Thread backend invariance ----------------------------------------------


class TestThreadBackendInvariance:
    @pytest.mark.parametrize("num_workers", (1, 2, 4))
    @pytest.mark.parametrize("policy", ("contiguous", "strided"))
    def test_workers_match_serial_engine(self, num_workers, policy):
        serial = _answer(
            EngineConfig(
                algorithm="sharded",
                num_shards=4,
                shard_policy=policy,
                chunk=ChunkConfig(16),
            )
        )
        threaded = _answer(
            EngineConfig(
                algorithm="sharded",
                num_shards=4,
                shard_policy=policy,
                chunk=ChunkConfig(16),
                execution=ExecutionConfig(
                    backend="thread", num_workers=num_workers
                ),
            )
        )
        np.testing.assert_allclose(
            threaded.logits,
            serial.logits,
            rtol=LOGIT_TOLERANCE,
            atol=LOGIT_TOLERANCE,
        )
        np.testing.assert_array_equal(threaded.answer_ids, serial.answer_ids)

    def test_single_worker_thread_backend_is_bit_identical(self):
        """workers=1 never enters the pool: same loop, same bits."""
        m_in, m_out, u = _random_memories()
        serial = ShardedMemNN(m_in, m_out, num_shards=3, chunk=ChunkConfig(32))
        threaded = ShardedMemNN(
            m_in,
            m_out,
            num_shards=3,
            chunk=ChunkConfig(32),
            execution=ExecutionConfig(backend="thread", num_workers=1),
        )
        np.testing.assert_array_equal(
            threaded.output(u).output, serial.output(u).output
        )

    def test_pool_results_arrive_in_shard_order(self):
        """The merge folds partials in shard order regardless of which
        thread finishes first, so parallel == serial exactly."""
        m_in, m_out, u = _random_memories(seed=3)
        shards = list(partition_memory(m_in, m_out, parts=4))
        serial = run_shard_partials(shards, u)
        threaded = run_shard_partials(
            shards,
            u,
            execution=ExecutionConfig(backend="thread", num_workers=4),
        )
        assert len(threaded) == len(serial)
        for (pa, _), (pb, _) in zip(serial, threaded):
            np.testing.assert_array_equal(pa.weighted, pb.weighted)
            np.testing.assert_array_equal(pa.denom, pb.denom)
            np.testing.assert_array_equal(pa.log_max, pb.log_max)

    def test_engine_config_parallel_factory(self):
        config = EngineConfig.parallel(4)
        assert config.algorithm == "sharded"
        assert config.num_shards == 4
        # The preset defaults to the process backend (the one that
        # measured a real speedup); the thread backend stays reachable
        # explicitly.
        assert config.execution.backend == "process"
        assert config.execution.num_workers == 4
        assert EngineConfig.parallel(4, backend="thread").execution.backend == "thread"
        oversubscribed = EngineConfig.parallel(2, num_shards=8)
        assert oversubscribed.num_shards == 8
        assert oversubscribed.execution.num_workers == 2


# --- float32 compute path ---------------------------------------------------


class TestFloat32Path:
    @pytest.mark.parametrize(
        "algorithm,zero_skip,stable",
        list(
            itertools.product(
                ("baseline", "column", "sharded"),
                (None, ZeroSkipConfig(0.0, mode="exp")),
                (True, False),
            )
        ),
    )
    def test_float32_matches_float64(self, algorithm, zero_skip, stable):
        kwargs = dict(
            algorithm=algorithm,
            stable_softmax=stable,
            chunk=ChunkConfig(16),
        )
        if zero_skip is not None:
            kwargs["zero_skip"] = zero_skip
        if algorithm == "sharded":
            kwargs["num_shards"] = 3
        reference = _answer(EngineConfig(**kwargs))
        f32 = _answer(
            EngineConfig(**kwargs, execution=ExecutionConfig(dtype="float32"))
        )
        np.testing.assert_allclose(
            f32.logits,
            reference.logits,
            rtol=FLOAT32_LOGIT_TOLERANCE,
            atol=FLOAT32_LOGIT_TOLERANCE,
        )
        np.testing.assert_array_equal(f32.answer_ids, reference.answer_ids)

    def test_float32_halves_streamed_bytes(self):
        m_in, m_out, u = _random_memories()
        f64 = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(32))
        f32 = ColumnMemNN(
            m_in, m_out, chunk=ChunkConfig(32), dtype=np.float32
        )
        reads64 = f64.output(u).stats.bytes_read
        reads32 = f32.output(u).stats.bytes_read
        assert reads32 < reads64

    def test_exp_floor_output_is_normal(self):
        """The pre-exp clamp lands safely above the subnormal range
        (subnormal operands stall x86 pipelines ~100x per element)."""
        for dtype in (np.float32, np.float64):
            m_in, m_out, _ = _random_memories()
            solver = ColumnMemNN(m_in, m_out, dtype=dtype)
            floored = np.exp(solver._exp_floor)
            assert floored >= np.finfo(dtype).tiny

    def test_rejects_unsupported_dtype(self):
        m_in, m_out, _ = _random_memories()
        with pytest.raises(ValueError, match="dtype"):
            ColumnMemNN(m_in, m_out, dtype=np.int32)


# --- ExecutionConfig validation ---------------------------------------------


class TestExecutionConfigValidation:
    def test_defaults_are_serial_float64(self):
        config = ExecutionConfig()
        assert config.backend == "serial"
        assert config.num_workers == 1
        assert config.dtype == "float64"
        assert not config.parallel

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionConfig(backend="mpi")

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            ExecutionConfig(dtype="float16")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            ExecutionConfig(num_workers=0)

    def test_rejects_workers_on_serial_backend(self):
        with pytest.raises(ValueError, match="num_workers"):
            ExecutionConfig(backend="serial", num_workers=2)

    def test_parallel_requires_sharded_algorithm(self):
        # Cross-field coupling is checked on the *composed* config, not
        # at construction — a builder chain may set the shards later.
        config = EngineConfig(
            algorithm="column",
            execution=ExecutionConfig(backend="thread", num_workers=2),
        )
        with pytest.raises(ValueError, match="sharded"):
            config.validate()
        assert config.with_sharding(2).validate().num_shards == 2


# --- Measured wall-clock ----------------------------------------------------


class TestElapsedSeconds:
    def test_answer_result_reports_wall_clock(self):
        result = _answer(EngineConfig())
        assert result.elapsed_seconds > 0.0

    def test_inference_result_reports_wall_clock(self):
        m_in, m_out, u = _random_memories()
        for solver in (
            ColumnMemNN(m_in, m_out, chunk=ChunkConfig(32)),
            ShardedMemNN(m_in, m_out, num_shards=2),
        ):
            assert solver.output(u).elapsed_seconds > 0.0


# --- Kernel short-circuit exactness -----------------------------------------


class TestShortCircuits:
    def test_merge_equal_log_max_is_plain_sum(self):
        """When both partials share a running max the rescale factors
        are exactly 1.0, so the short-circuit (plain addition) is
        bit-identical to the general rescaled path."""
        rng = np.random.default_rng(7)
        log_max = rng.normal(size=4)
        a = PartialOutput(
            weighted=rng.normal(size=(4, 8)),
            denom=rng.uniform(1.0, 2.0, size=4),
            log_max=log_max.copy(),
        )
        b = PartialOutput(
            weighted=rng.normal(size=(4, 8)),
            denom=rng.uniform(1.0, 2.0, size=4),
            log_max=log_max.copy(),
        )
        merged = a.merge(b)
        np.testing.assert_array_equal(merged.weighted, a.weighted + b.weighted)
        np.testing.assert_array_equal(merged.denom, a.denom + b.denom)
        np.testing.assert_array_equal(merged.log_max, log_max)

    def test_merge_with_empty_partial_is_exact(self):
        """An empty partial carries -inf log_max and zero mass, so
        merging it in is a no-op on the finalized output."""
        m_in, m_out, u = _random_memories()
        full, _ = ColumnMemNN(m_in, m_out).partial_output(u)
        empty = PartialOutput.empty(u.shape[0], m_in.shape[1])
        np.testing.assert_array_equal(
            empty.merge(full).finalize(), full.finalize()
        )
        np.testing.assert_array_equal(
            full.merge(empty).finalize(), full.finalize()
        )

    def test_skip_free_path_counts_every_row(self):
        """With zero-skip off, the keep mask is elided entirely but the
        stats still account every row as computed."""
        m_in, m_out, u = _random_memories()
        nq, ns = u.shape[0], m_in.shape[0]
        result = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(32)).output(u)
        assert result.stats.rows_computed == nq * ns
        assert result.stats.rows_skipped == 0
