"""GPU and FPGA model tests: the shapes of Figs. 12, 13 and 14, §5.5."""

import numpy as np
import pytest

from repro.core.config import FPGA_CONFIG, GPU_CONFIG
from repro.perf import EnergyModel, FpgaModel, GpuModel


@pytest.fixture
def gpu():
    return GpuModel()


@pytest.fixture
def fpga():
    return FpgaModel()


class TestGpuStreams:
    def test_single_stream_equals_no_overlap_shape(self, gpu):
        base = gpu.run_baseline(GPU_CONFIG)
        one = gpu.run_streams(GPU_CONFIG, 1)
        assert one.total_seconds == pytest.approx(base.total_seconds, rel=0.01)

    def test_streams_overlap_copies_with_kernels(self, gpu):
        """Fig. 12(a): multi-stream gives ~1.33x and then plateaus."""
        base = gpu.run_baseline(GPU_CONFIG).total_seconds
        speedups = {
            k: base / gpu.run_streams(GPU_CONFIG, k).total_seconds
            for k in (1, 2, 4, 8, 16)
        }
        assert 1.1 <= speedups[4] <= 1.5
        # Plateau: going 8 -> 16 streams barely helps (copy critical path).
        assert speedups[16] - speedups[8] < 0.05
        assert speedups[16] < 1.45

    def test_copies_serialize_within_one_gpu(self, gpu):
        """memcpy/memcpy does not overlap: total H2D time is at least the
        full payload at link rate no matter how many streams."""
        result = gpu.run_streams(GPU_CONFIG, 4)
        copy_floor = gpu.copy_bytes(GPU_CONFIG) / gpu.pcie_link_bandwidth
        assert result.total_seconds >= copy_floor

    def test_stream_count_validated(self, gpu):
        with pytest.raises(ValueError):
            gpu.run_streams(GPU_CONFIG, 0)


class TestMultiGpu:
    def test_multi_gpu_scales_better_than_streams(self, gpu):
        """§5.3: multiple GPUs overlap copies with copies; streams cannot."""
        base = gpu.run_baseline(GPU_CONFIG).total_seconds
        four_streams = base / gpu.run_streams(GPU_CONFIG, 4).total_seconds
        four_gpus = base / gpu.run_multi_gpu(GPU_CONFIG, 4).total_seconds
        assert four_gpus > 2 * four_streams

    def test_four_gpu_speedup_band(self, gpu):
        """Paper: 4.34x on four GPUs (we accept the 3-5x band)."""
        base = gpu.run_baseline(GPU_CONFIG).total_seconds
        speedup = base / gpu.run_multi_gpu(GPU_CONFIG, 4).total_seconds
        assert 3.0 <= speedup <= 5.0

    def test_h2d_contention_gap_grows_with_gpus(self, gpu):
        """Fig. 12(b): worst-vs-ideal H2D difference grows with #GPUs."""
        gaps = []
        for g in (1, 2, 4):
            shared = gpu.run_multi_gpu(GPU_CONFIG, g).worst_h2d
            ideal = gpu.run_multi_gpu(GPU_CONFIG, g, ideal_pcie=True).worst_h2d
            gaps.append(shared - ideal)
        assert gaps[0] == pytest.approx(0.0, abs=1e-9)
        assert gaps[-1] > gaps[0]
        assert gaps == sorted(gaps)

    def test_ideal_pcie_never_slower(self, gpu):
        for g in (1, 2, 3, 4):
            shared = gpu.run_multi_gpu(GPU_CONFIG, g).total_seconds
            ideal = gpu.run_multi_gpu(GPU_CONFIG, g, ideal_pcie=True).total_seconds
            assert ideal <= shared + 1e-12

    def test_gpu_count_validated(self, gpu):
        with pytest.raises(ValueError):
            gpu.run_multi_gpu(GPU_CONFIG, 0)


class TestGpuZeroSkip:
    def test_compaction_negates_pruning(self, gpu):
        """§4.1.2: the compaction cost eats the pruning gain on GPUs."""
        estimate = gpu.zero_skip_estimate(GPU_CONFIG)
        assert estimate["net_speedup"] <= 1.0
        assert estimate["pruned_seconds"] < estimate["weighted_sum_seconds"]

    def test_skip_ratio_validated(self, gpu):
        with pytest.raises(ValueError):
            gpu.zero_skip_estimate(GPU_CONFIG, skip_ratio=1.5)


class TestFpgaLatency:
    def test_fig13_ordering(self, fpga):
        table = fpga.latency_table()
        assert (
            table["baseline"]
            > table["column"]
            > table["column_streaming"]
            > table["mnnfast"]
        )

    def test_fig13_bands(self, fpga):
        """Paper: column -27.6%, +streaming -38.2%, MnnFast up to 2.01x."""
        table = fpga.latency_table()
        assert 0.62 <= table["column"] <= 0.82
        assert 0.52 <= table["column_streaming"] <= 0.72
        speedup = 1.0 / table["mnnfast"]
        assert 1.7 <= speedup <= 2.5

    def test_streaming_overlaps(self, fpga):
        col = fpga.run(variant="column")
        streamed = fpga.run(variant="column_streaming")
        assert not col.overlapped and streamed.overlapped
        assert streamed.total_seconds < col.total_seconds

    def test_chunk_skip_fraction(self, fpga):
        # keep 3% per row, chunk of 25: skip ~ 0.97^25 ~ 0.47.
        assert fpga.chunk_skip_fraction(0.03) == pytest.approx(0.97**25)
        assert fpga.chunk_skip_fraction(0.0) == 1.0
        assert fpga.chunk_skip_fraction(1.0) == 0.0

    def test_higher_keep_rate_means_higher_latency(self, fpga):
        sparse = fpga.run(variant="mnnfast", keep_rate=0.01).total_seconds
        dense = fpga.run(variant="mnnfast", keep_rate=0.5).total_seconds
        assert sparse < dense

    def test_variant_validated(self, fpga):
        with pytest.raises(ValueError, match="variant"):
            fpga.run(variant="warp")

    def test_burst_efficiency_validated(self):
        with pytest.raises(ValueError):
            FpgaModel(baseline_burst_efficiency=0.0)


class TestFpgaEmbedding:
    def test_no_cache_latency_linear_in_words(self, fpga):
        short = fpga.embedding_latency(list(range(10)))
        long = fpga.embedding_latency(list(range(20)))
        assert long.total_seconds == pytest.approx(2 * short.total_seconds)

    def test_cache_reduces_latency_on_reuse(self, fpga):
        from repro.core.config import EmbeddingCacheConfig
        from repro.memsim import EmbeddingCache

        words = [1, 2, 3] * 100
        cache = EmbeddingCache(
            EmbeddingCacheConfig(size_bytes=32 * 1024, embedding_dim=256)
        )
        cached = fpga.embedding_latency(words, cache=cache)
        uncached = fpga.embedding_latency(words)
        assert cached.total_seconds < 0.5 * uncached.total_seconds
        assert cached.hit_rate > 0.9

    def test_sweep_monotone_in_cache_size(self, fpga, rng):
        # A heavier-tailed-than-uniform stream: bigger cache, bigger win.
        words = rng.zipf(1.3, size=4000) % 10_000
        reductions = fpga.embedding_cache_sweep(words)
        values = list(reductions.values())
        assert values == sorted(values)
        assert all(0.0 <= v < 1.0 for v in values)


class TestEnergy:
    def test_paper_ratio_band(self):
        """§5.5: FPGA-MnnFast up to 6.54x more energy-efficient."""
        ratio = EnergyModel().compare().efficiency_ratio
        assert 5.0 <= ratio <= 8.0

    def test_fpga_slower_but_cheaper(self):
        comparison = EnergyModel().compare()
        assert comparison.fpga_seconds > comparison.cpu_seconds
        assert comparison.fpga_joules < comparison.cpu_joules

    def test_power_validated(self):
        with pytest.raises(ValueError):
            EnergyModel(cpu_power_watts=0)
        with pytest.raises(ValueError):
            EnergyModel(cpu_bandwidth_efficiency=1.5)

    def test_ratio_scales_with_cpu_power(self):
        low = EnergyModel(cpu_power_watts=50).compare().efficiency_ratio
        high = EnergyModel(cpu_power_watts=200).compare().efficiency_ratio
        assert high == pytest.approx(4 * low)
