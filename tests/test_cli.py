"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    @pytest.mark.parametrize(
        "experiment",
        ["table1", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13",
         "fig14", "energy"],
    )
    def test_fast_experiments_run(self, experiment, capsys):
        assert main([experiment]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_fig4_runs(self, capsys):
        assert main(["fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_experiment_has_description(self):
        for name, (description, handler) in EXPERIMENTS.items():
            assert description
            assert callable(handler)

    @pytest.mark.slow
    def test_quick_trained_experiment(self, capsys):
        assert main(["fig6", "--quick"]) == 0
        assert "sparsity" in capsys.readouterr().out
