"""Tests for Vocabulary and ZipfCorpus."""

import numpy as np
import pytest

from repro.data import Vocabulary, ZipfCorpus


class TestVocabulary:
    def test_pad_is_id_zero(self):
        vocab = Vocabulary()
        assert vocab.word_of(0) == "<pad>"
        assert len(vocab) == 1

    def test_add_and_lookup_roundtrip(self):
        vocab = Vocabulary()
        wid = vocab.add("Kitchen")
        assert vocab.id_of("kitchen") == wid
        assert vocab.word_of(wid) == "kitchen"

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        assert vocab.add("apple") == vocab.add("apple")
        assert len(vocab) == 2

    def test_frozen_rejects_new_words(self):
        vocab = Vocabulary(["a"])
        vocab.freeze()
        with pytest.raises(KeyError, match="frozen"):
            vocab.add("b")
        assert vocab.id_of("a") == 1  # existing words still resolve

    def test_unknown_word_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            Vocabulary().id_of("ghost")

    def test_encode_pads_to_width(self):
        vocab = Vocabulary()
        ids = vocab.encode(["a", "b"], width=5)
        assert ids.shape == (5,)
        assert list(ids[2:]) == [0, 0, 0]

    def test_encode_rejects_overflow(self):
        with pytest.raises(ValueError, match="exceed"):
            Vocabulary().encode(["a", "b", "c"], width=2)

    def test_decode_drops_padding(self):
        vocab = Vocabulary()
        ids = vocab.encode(["x", "y"], width=4)
        assert vocab.decode(ids) == ["x", "y"]

    def test_word_of_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary().word_of(5)

    def test_contains(self):
        vocab = Vocabulary(["Apple"])
        assert "apple" in vocab
        assert "APPLE" in vocab
        assert "pear" not in vocab


class TestZipfCorpus:
    def test_probabilities_sum_to_one(self):
        corpus = ZipfCorpus(vocab_size=100)
        total = sum(corpus.probability_of_rank(r) for r in range(1, 101))
        assert total == pytest.approx(1.0)

    def test_rank_ordering(self):
        corpus = ZipfCorpus(vocab_size=1000)
        assert corpus.probability_of_rank(1) > corpus.probability_of_rank(2)
        assert corpus.probability_of_rank(10) > corpus.probability_of_rank(100)

    def test_zipf_ratio(self):
        # s=1: rank-1 word is twice as frequent as rank-2.
        corpus = ZipfCorpus(vocab_size=1000, exponent=1.0)
        ratio = corpus.probability_of_rank(1) / corpus.probability_of_rank(2)
        assert ratio == pytest.approx(2.0)

    def test_top_mass_monotone(self):
        corpus = ZipfCorpus(vocab_size=1000)
        masses = [corpus.top_mass(k) for k in (0, 10, 100, 1000)]
        assert masses[0] == 0.0
        assert masses == sorted(masses)
        assert masses[-1] == pytest.approx(1.0)

    def test_sample_respects_frequencies(self):
        corpus = ZipfCorpus(vocab_size=500, seed=3, shuffle_ids=False)
        stream = corpus.sample(50_000)
        counts = np.bincount(stream, minlength=500)
        # Without shuffling, word ID 0 is rank 1: most frequent.
        assert counts[0] == counts.max()
        empirical_top10 = counts[:10].sum() / len(stream)
        assert empirical_top10 == pytest.approx(corpus.top_mass(10), abs=0.02)

    def test_sample_ids_in_range(self):
        corpus = ZipfCorpus(vocab_size=50, seed=1)
        stream = corpus.sample(1000)
        assert stream.min() >= 0
        assert stream.max() < 50

    def test_deterministic_under_seed(self):
        a = ZipfCorpus(vocab_size=100, seed=5).sample(100)
        b = ZipfCorpus(vocab_size=100, seed=5).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_shuffled_ids_are_a_permutation(self):
        corpus = ZipfCorpus(vocab_size=64, seed=2)
        ids = {corpus.word_id_of_rank(r) for r in range(1, 65)}
        assert ids == set(range(64))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfCorpus(vocab_size=0)
        with pytest.raises(ValueError):
            ZipfCorpus(exponent=0.0)
        with pytest.raises(ValueError):
            ZipfCorpus().probability_of_rank(0)
        with pytest.raises(ValueError):
            ZipfCorpus().sample(-1)
