"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.perf.events import (
    Acquire,
    Release,
    Resource,
    SharedBandwidth,
    Simulator,
    Timeout,
    Transfer,
    WaitFor,
)


class TestSimulatorBasics:
    def test_timeout_advances_clock(self):
        sim = Simulator()

        def proc():
            yield Timeout(5.0)

        p = sim.spawn(proc())
        sim.run()
        assert p.done
        assert p.finish_time == pytest.approx(5.0)

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            yield Timeout(2.0)

        p = sim.spawn(proc())
        sim.run()
        assert p.finish_time == pytest.approx(3.0)

    def test_processes_run_concurrently(self):
        sim = Simulator()
        order = []

        def proc(name, delay):
            yield Timeout(delay)
            order.append(name)

        sim.spawn(proc("slow", 2.0))
        sim.spawn(proc("fast", 1.0))
        sim.run()
        assert order == ["fast", "slow"]

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        p = sim.spawn(proc())
        now = sim.run(until=5.0)
        assert now == 5.0
        assert not p.done

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_unknown_command_raises(self):
        sim = Simulator()

        def proc():
            yield "junk"

        sim.spawn(proc())
        with pytest.raises(TypeError):
            sim.run()


class TestResource:
    def test_mutual_exclusion(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        finish = {}

        def proc(name):
            yield Acquire(res)
            yield Timeout(1.0)
            yield Release(res)
            finish[name] = sim.now

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert finish["a"] == pytest.approx(1.0)
        assert finish["b"] == pytest.approx(2.0)  # serialized

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = {}

        def proc(name):
            yield Acquire(res)
            yield Timeout(1.0)
            yield Release(res)
            finish[name] = sim.now

        for name in "abc":
            sim.spawn(proc(name))
        sim.run()
        assert finish["a"] == pytest.approx(1.0)
        assert finish["b"] == pytest.approx(1.0)
        assert finish["c"] == pytest.approx(2.0)

    def test_fifo_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def proc(name):
            yield Acquire(res)
            order.append(name)
            yield Timeout(1.0)
            yield Release(res)

        for name in "abcd":
            sim.spawn(proc(name))
        sim.run()
        assert order == list("abcd")

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res._release()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)


class TestSharedBandwidth:
    def test_single_transfer_at_full_rate(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=10.0)

        def proc():
            yield Transfer(link, 100.0)

        p = sim.spawn(proc())
        sim.run()
        assert p.finish_time == pytest.approx(10.0)

    def test_two_transfers_share_equally(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=10.0)
        finish = []

        def proc():
            yield Transfer(link, 100.0)
            finish.append(sim.now)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        # Each gets 5 units/s -> both finish at t=20.
        assert finish == pytest.approx([20.0, 20.0])

    def test_late_joiner_slows_first(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=10.0)
        finish = {}

        def first():
            yield Transfer(link, 100.0)
            finish["first"] = sim.now

        def second():
            yield Timeout(5.0)
            yield Transfer(link, 50.0)
            finish["second"] = sim.now

        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        # First runs alone 0-5 (50 done), then shares: remaining 50 at
        # rate 5 -> finishes at 15; second: 50 at rate 5 -> also 15.
        assert finish["first"] == pytest.approx(15.0)
        assert finish["second"] == pytest.approx(15.0)

    def test_per_transfer_cap(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=10.0, per_transfer_cap=2.0)

        def proc():
            yield Transfer(link, 10.0)

        p = sim.spawn(proc())
        sim.run()
        assert p.finish_time == pytest.approx(5.0)  # capped at 2/s

    def test_bytes_conserved(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=7.0)

        def proc(n):
            yield Transfer(link, n)

        for n in (30.0, 50.0, 20.0):
            sim.spawn(proc(n))
        sim.run()
        assert link.bytes_moved == pytest.approx(100.0)

    def test_zero_byte_transfer_is_instant(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=10.0)

        def proc():
            yield Transfer(link, 0.0)

        p = sim.spawn(proc())
        sim.run()
        assert p.finish_time == 0.0

    def test_many_small_transfers_terminate(self):
        # Regression: float residue must not strand transfers.
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=12e9)

        def proc():
            for _ in range(8):
                yield Transfer(link, 6.4e6)

        for _ in range(16):
            sim.spawn(proc())
        total = sim.run()
        assert total == pytest.approx(16 * 8 * 6.4e6 / 12e9, rel=1e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Transfer(SharedBandwidth(Simulator(), 1.0), -1.0)


class TestWaitFor:
    def test_join_waits_for_child(self):
        sim = Simulator()

        def child():
            yield Timeout(3.0)

        def parent():
            c = sim.spawn(child())
            yield Timeout(1.0)
            yield WaitFor(c)

        p = sim.spawn(parent())
        sim.run()
        assert p.finish_time == pytest.approx(3.0)

    def test_join_on_finished_child_is_instant(self):
        sim = Simulator()

        def child():
            yield Timeout(1.0)

        def parent(c):
            yield Timeout(5.0)
            yield WaitFor(c)

        c = sim.spawn(child())
        p = sim.spawn(parent(c))
        sim.run()
        assert p.finish_time == pytest.approx(5.0)

    def test_multiple_waiters_released(self):
        sim = Simulator()

        def child():
            yield Timeout(2.0)

        c = sim.spawn(child())
        waiters = []

        def parent():
            yield WaitFor(c)
            waiters.append(sim.now)

        sim.spawn(parent())
        sim.spawn(parent())
        sim.run()
        assert waiters == pytest.approx([2.0, 2.0])
