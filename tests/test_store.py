"""Tests for the tiered memory store (``repro.store``).

Covers the store backends (resident / mmap round-trips, boundary
geometry, error cleanup), the chunk pipeline's accounting, the
differential grid that pins the out-of-core paths to the resident
reference at 1e-10, the engine/config integration, and the
``BENCH_*.json`` artifact validator.
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    ColumnMemNN,
    EngineConfig,
    EngineWeights,
    MemNNConfig,
    MnnFastEngine,
    ShardedMemNN,
    StoreConfig,
)
from repro.core.config import ChunkConfig
from repro.store import (
    ChunkPrefetcher,
    MmapStore,
    ResidentStore,
    RowSubsetStore,
    iter_chunk_spans,
)

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "benchmarks")
)
from validate_artifacts import main as validate_main  # noqa: E402
from validate_artifacts import validate_artifact  # noqa: E402

NS, ED, NQ = 257, 24, 5


@pytest.fixture
def memories():
    rng = np.random.default_rng(42)
    return rng.normal(size=(NS, ED)), rng.normal(size=(NS, ED))


@pytest.fixture
def questions(memories):
    rng = np.random.default_rng(7)
    return memories[0][rng.integers(0, NS, size=NQ)] * 2.0


@pytest.fixture
def mmap_store(memories, tmp_path):
    return MmapStore.save(tmp_path / "store", *memories)


class TestResidentStore:
    def test_metadata_and_chunks(self, memories):
        store = ResidentStore(*memories)
        assert store.num_rows == NS
        assert store.embedding_dim == ED
        assert store.dtype == np.float64
        assert store.resident
        chunk_in, chunk_out = store.read_chunk(10, 20)
        np.testing.assert_array_equal(chunk_in, memories[0][10:20])
        np.testing.assert_array_equal(chunk_out, memories[1][10:20])
        # Resident chunk reads are zero-copy views.
        assert np.shares_memory(chunk_in, store.m_in)

    def test_dtype_conversion(self, memories):
        store = ResidentStore(*memories, dtype=np.float32)
        assert store.dtype == np.float32
        assert store.m_in.dtype == np.float32

    def test_select_covers_rows(self, memories):
        store = ResidentStore(*memories)
        sub = store.select(np.arange(3, 60, 7))
        np.testing.assert_array_equal(sub.m_in, memories[0][3:60:7])

    def test_lazy_select_is_a_view(self, memories):
        store = ResidentStore(*memories)
        sub = store.lazy_select([5, 2, 9])
        assert isinstance(sub, RowSubsetStore)
        assert sub.num_rows == 3
        chunk_in, _ = sub.read_chunk(0, 2)
        np.testing.assert_array_equal(chunk_in, memories[0][[5, 2]])

    def test_rejects_bad_shapes(self, memories):
        with pytest.raises(ValueError, match="2-D"):
            ResidentStore(memories[0][0], memories[1][0])
        with pytest.raises(ValueError, match="shapes differ"):
            ResidentStore(memories[0], memories[1][:-1])


class TestMmapStoreRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_save_open_round_trip(self, memories, tmp_path, dtype):
        saved = MmapStore.save(tmp_path / "s", *memories, dtype=dtype)
        reopened = MmapStore.open(tmp_path / "s")
        assert reopened.dtype == np.dtype(dtype)
        assert reopened.num_rows == NS
        assert reopened.embedding_dim == ED
        assert not reopened.resident
        np.testing.assert_array_equal(
            np.asarray(reopened.m_in), memories[0].astype(dtype)
        )
        np.testing.assert_array_equal(
            np.asarray(reopened.m_out), memories[1].astype(dtype)
        )
        np.testing.assert_array_equal(
            np.asarray(saved.m_in), np.asarray(reopened.m_in)
        )

    def test_chunk_boundaries_with_ragged_tail(self, mmap_store, memories):
        # NS = 257 is deliberately not divisible by the chunk size.
        spans = list(iter_chunk_spans(mmap_store.num_rows, 64))
        assert spans[-1] == (256, 257)
        pieces = [mmap_store.read_chunk(*span)[0] for span in spans]
        assert [len(p) for p in pieces] == [64, 64, 64, 64, 1]
        np.testing.assert_array_equal(np.vstack(pieces), memories[0])

    def test_chunk_read_clamps_past_the_end(self, mmap_store, memories):
        chunk_in, chunk_out = mmap_store.read_chunk(250, 400)
        assert chunk_in.shape == (7, ED)
        np.testing.assert_array_equal(chunk_in, memories[0][250:])
        np.testing.assert_array_equal(chunk_out, memories[1][250:])

    def test_store_smaller_than_one_chunk(self, memories, tmp_path):
        store = MmapStore.save(
            tmp_path / "tiny", memories[0][:3], memories[1][:3]
        )
        assert list(iter_chunk_spans(store.num_rows, 64)) == [(0, 3)]
        chunk_in, _ = store.read_chunk(0, 64)
        np.testing.assert_array_equal(chunk_in, memories[0][:3])

    def test_read_rows_gathers(self, mmap_store, memories):
        rows_in, rows_out = mmap_store.read_rows(np.array([0, 256, 17]))
        np.testing.assert_array_equal(rows_in, memories[0][[0, 256, 17]])
        np.testing.assert_array_equal(rows_out, memories[1][[0, 256, 17]])

    def test_save_refuses_existing_dir(self, memories, tmp_path):
        MmapStore.save(tmp_path / "s", *memories)
        with pytest.raises(FileExistsError):
            MmapStore.save(tmp_path / "s", *memories)
        # overwrite=True replaces it.
        MmapStore.save(tmp_path / "s", memories[0][:5], memories[1][:5],
                       overwrite=True)
        assert MmapStore.open(tmp_path / "s").num_rows == 5

    def test_save_cleans_up_on_error(self, memories, tmp_path, monkeypatch):
        calls = []
        original = MmapStore._write_matrix

        def failing(target, matrix, dtype):
            calls.append(target)
            if len(calls) == 2:  # fail while writing m_out.bin
                raise OSError("disk full")
            original(target, matrix, dtype)

        monkeypatch.setattr(MmapStore, "_write_matrix", staticmethod(failing))
        with pytest.raises(OSError, match="disk full"):
            MmapStore.save(tmp_path / "partial", *memories)
        # No half-written store directory left behind.
        assert not (tmp_path / "partial").exists()

    def test_open_rejects_missing_and_corrupt(self, memories, tmp_path):
        with pytest.raises(FileNotFoundError):
            MmapStore.open(tmp_path / "nowhere")
        MmapStore.save(tmp_path / "s", *memories)
        meta_path = tmp_path / "s" / "store.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            MmapStore.open(tmp_path / "s")
        meta["format"] = 1
        meta["rows"] = NS + 1  # size mismatch vs the .bin files
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="bytes"):
            MmapStore.open(tmp_path / "s")

    def test_empty_store_is_rejected(self, memories, tmp_path):
        with pytest.raises(ValueError, match="0 rows"):
            MmapStore.save(
                tmp_path / "empty", memories[0][:0], memories[1][:0]
            )
        assert not (tmp_path / "empty").exists()


class TestChunkPrefetcher:
    def test_demand_path_accounting(self, mmap_store):
        pipeline = ChunkPrefetcher(mmap_store, chunk_size=64)
        chunks = list(pipeline.chunks())
        assert len(chunks) == 5
        stats = pipeline.stats
        assert stats.chunks_served == 5
        assert stats.demand_fetches == 5
        assert stats.prefetch_coverage == 0.0
        assert stats.disk_bytes == sum(
            c[0].nbytes + c[1].nbytes for c in chunks
        )
        assert stats.ram_bytes == 0

    def test_prefetch_covers_every_chunk(self, mmap_store):
        pipeline = ChunkPrefetcher(mmap_store, chunk_size=64, prefetch_depth=2)
        list(pipeline.chunks())
        stats = pipeline.stats
        assert stats.chunks_served == 5
        assert stats.demand_fetches == 0
        assert stats.prefetch_coverage == 1.0
        assert stats.prefetch_hits + stats.prefetch_late == 5

    def test_lru_serves_second_pass_from_ram(self, mmap_store):
        pipeline = ChunkPrefetcher(
            mmap_store, chunk_size=64, resident_bytes=1 << 30
        )
        list(pipeline.chunks())
        first_disk = pipeline.stats.disk_bytes
        assert pipeline.cached_bytes > 0
        list(pipeline.chunks())
        assert pipeline.stats.disk_bytes == first_disk  # no new disk bytes
        assert pipeline.stats.ram_bytes == first_disk

    def test_lru_respects_budget(self, mmap_store):
        chunk_bytes = 2 * 64 * ED * 8
        pipeline = ChunkPrefetcher(
            mmap_store, chunk_size=64, resident_bytes=2 * chunk_bytes
        )
        list(pipeline.chunks())
        assert pipeline.cached_bytes <= 2 * chunk_bytes

    def test_chunks_match_the_store(self, mmap_store, memories):
        pipeline = ChunkPrefetcher(
            mmap_store, chunk_size=100, prefetch_depth=1
        )
        served = np.vstack([c[0] for c in pipeline.chunks()])
        np.testing.assert_array_equal(served, memories[0])

    def test_validation(self, mmap_store):
        with pytest.raises(ValueError, match="chunk_size"):
            ChunkPrefetcher(mmap_store, chunk_size=0)
        with pytest.raises(ValueError, match="prefetch_depth"):
            ChunkPrefetcher(mmap_store, chunk_size=64, prefetch_depth=-1)
        with pytest.raises(ValueError, match="resident_bytes"):
            ChunkPrefetcher(mmap_store, chunk_size=64, resident_bytes=0)


#: One chunk pair at chunk_size=64: the "tiny" budget holds one chunk,
#: the "large" budget holds the whole store.
_CHUNK_PAIR_BYTES = 2 * 64 * ED * 8


class TestDifferentialGrid:
    """Store-backed inference must match resident inference exactly."""

    @pytest.mark.parametrize("prefetch_depth", [0, 1, 2])
    @pytest.mark.parametrize(
        "resident_bytes", [None, _CHUNK_PAIR_BYTES, 1 << 30]
    )
    def test_column_mmap_grid(
        self, memories, questions, mmap_store, prefetch_depth, resident_bytes
    ):
        reference = ColumnMemNN(*memories).output(questions).output
        solver = ColumnMemNN(
            store=mmap_store,
            chunk=ChunkConfig(chunk_size=64),
            resident_bytes=resident_bytes,
            prefetch_depth=prefetch_depth,
        )
        result = solver.output(questions)
        np.testing.assert_allclose(
            result.output, reference, rtol=1e-10, atol=1e-10
        )
        store_stats = result.tier_stats()["store"]
        assert store_stats is not None
        assert store_stats.chunks_served == 5

    @pytest.mark.parametrize("prefetch_depth", [0, 2])
    def test_column_resident_pipeline_grid(
        self, memories, questions, prefetch_depth
    ):
        reference = ColumnMemNN(*memories).output(questions).output
        solver = ColumnMemNN(
            *memories,
            chunk=ChunkConfig(chunk_size=64),
            resident_bytes=1 << 20,
            prefetch_depth=prefetch_depth,
        )
        np.testing.assert_allclose(
            solver.output(questions).output, reference, rtol=1e-10, atol=1e-10
        )

    @pytest.mark.parametrize("policy", ["contiguous", "strided"])
    @pytest.mark.parametrize("num_shards", [1, 3, 4])
    def test_sharded_mmap_grid(
        self, memories, questions, mmap_store, num_shards, policy
    ):
        reference = ColumnMemNN(*memories).output(questions).output
        solver = ShardedMemNN(
            store=mmap_store,
            num_shards=num_shards,
            policy=policy,
            chunk=ChunkConfig(chunk_size=64),
            resident_bytes=1 << 20,
            prefetch_depth=2,
        )
        result = solver.output(questions)
        np.testing.assert_allclose(
            result.output, reference, rtol=1e-10, atol=1e-10
        )
        store_stats = result.tier_stats()["store"]
        assert store_stats is not None
        assert store_stats.chunks_served > 0

    def test_float32_store_matches_float32_resident(
        self, memories, questions, tmp_path
    ):
        store = MmapStore.save(
            tmp_path / "f32", *memories, dtype=np.float32
        )
        resident = ColumnMemNN(*memories, dtype=np.float32)
        streamed = ColumnMemNN(store=store, prefetch_depth=1)
        np.testing.assert_allclose(
            streamed.output(questions.astype(np.float32)).output,
            resident.output(questions.astype(np.float32)).output,
            rtol=1e-6, atol=1e-6,
        )

    def test_store_and_arrays_are_exclusive(self, memories, mmap_store):
        with pytest.raises(ValueError, match="not both"):
            ColumnMemNN(*memories, store=mmap_store)
        with pytest.raises(ValueError, match="not both"):
            ShardedMemNN(*memories, store=mmap_store)
        with pytest.raises(ValueError, match="memories required"):
            ColumnMemNN()


class TestStoreConfig:
    def test_defaults_are_disabled(self):
        config = StoreConfig()
        assert not config.enabled
        assert not config.out_of_core

    def test_validation(self):
        with pytest.raises(ValueError, match="backend"):
            StoreConfig(backend="tape")
        with pytest.raises(ValueError, match="prefetch_depth"):
            StoreConfig(prefetch_depth=-1)
        with pytest.raises(ValueError, match="resident_bytes"):
            StoreConfig(resident_bytes=0)
        with pytest.raises(ValueError, match="mmap"):
            StoreConfig(backend="resident", path="/tmp/somewhere")

    def test_baseline_engine_rejects_store(self):
        config = EngineConfig(
            algorithm="baseline",
            store=StoreConfig(backend="mmap"),
        )
        with pytest.raises(ValueError, match="baseline"):
            config.validate()

    def test_out_of_core_preset(self):
        config = EngineConfig.out_of_core()
        assert config.algorithm == "column"
        assert config.store.out_of_core
        assert config.store.prefetch_depth == 2
        sharded = EngineConfig.out_of_core(num_shards=4)
        assert sharded.algorithm == "sharded"
        assert sharded.num_shards == 4


class TestEngineOutOfCore:
    def _setup(self, engine_config):
        config = MemNNConfig(
            vocab_size=60, embedding_dim=ED, num_sentences=NS,
            max_words=6, hops=2,
        )
        rng = np.random.default_rng(3)
        weights = EngineWeights.random(config, rng=rng)
        engine = MnnFastEngine(config, weights, engine_config=engine_config)
        story = rng.integers(1, 60, size=(50, 6))
        questions = rng.integers(1, 60, size=(4, 6))
        engine.store_story(story)
        return engine, questions

    def test_out_of_core_matches_resident(self):
        resident, questions = self._setup(EngineConfig())
        streamed, _ = self._setup(EngineConfig.out_of_core())
        expected = resident.answer(questions)
        actual = streamed.answer(questions)
        np.testing.assert_allclose(
            actual.logits, expected.logits, rtol=1e-10, atol=1e-10
        )
        np.testing.assert_array_equal(
            actual.answer_ids, expected.answer_ids
        )

    def test_sharded_out_of_core_matches_resident(self):
        resident, questions = self._setup(EngineConfig())
        streamed, _ = self._setup(
            EngineConfig.out_of_core(num_shards=3, shard_policy="strided")
        )
        np.testing.assert_allclose(
            streamed.answer(questions).logits,
            resident.answer(questions).logits,
            rtol=1e-10, atol=1e-10,
        )

    def test_spills_to_configured_path(self, tmp_path):
        engine, questions = self._setup(
            EngineConfig.out_of_core(path=str(tmp_path / "spill"))
        )
        engine.answer(questions)
        assert (tmp_path / "spill" / "pair0" / "store.json").is_file()

    def test_restore_after_memory_mutation(self):
        streamed, questions = self._setup(EngineConfig.out_of_core())
        resident, _ = self._setup(EngineConfig())
        first = streamed.answer(questions).logits
        rng = np.random.default_rng(9)
        more = rng.integers(1, 60, size=(20, 6))
        streamed.store_story(more)
        resident.store_story(more)
        second = streamed.answer(questions)
        np.testing.assert_allclose(
            second.logits, resident.answer(questions).logits,
            rtol=1e-10, atol=1e-10,
        )
        assert not np.allclose(second.logits, first)


class TestArtifactValidator:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))

    def test_valid_artifact_passes(self, tmp_path):
        self._write(
            tmp_path / "BENCH_x.json",
            {"smoke": True, "headline": 1.5},
        )
        assert validate_artifact(tmp_path / "BENCH_x.json") == []
        assert validate_main(tmp_path) == 0

    def test_unparseable_artifact_fails(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        problems = validate_artifact(tmp_path / "BENCH_bad.json")
        assert problems and "JSON" in problems[0]
        assert validate_main(tmp_path) == 1

    def test_missing_smoke_key_fails(self, tmp_path):
        self._write(tmp_path / "BENCH_x.json", {"headline": 1.5})
        problems = validate_artifact(tmp_path / "BENCH_x.json")
        assert any("smoke" in p for p in problems)

    def test_empty_payload_fails(self, tmp_path):
        self._write(
            tmp_path / "BENCH_x.json",
            {"smoke": True, "series": {}, "note": ""},
        )
        problems = validate_artifact(tmp_path / "BENCH_x.json")
        assert any("payload" in p for p in problems)

    def test_non_object_fails(self, tmp_path):
        self._write(tmp_path / "BENCH_x.json", [1, 2, 3])
        problems = validate_artifact(tmp_path / "BENCH_x.json")
        assert any("object" in p for p in problems)

    def test_no_artifacts_is_a_failure(self, tmp_path):
        assert validate_main(tmp_path) == 1

    def test_repo_artifacts_are_valid_if_present(self):
        root = Path(__file__).resolve().parent.parent
        for artifact in root.glob("BENCH_*.json"):
            assert validate_artifact(artifact) == [], artifact.name
