"""Unit tests for the embedding cache, DRAM model and hierarchy."""

import numpy as np
import pytest

from repro.core.config import EmbeddingCacheConfig
from repro.memsim import (
    Access,
    DramModel,
    EmbeddingCache,
    MemoryHierarchy,
    Prefetch,
    SetAssociativeCache,
)
from repro.memsim.dram import DDR4_2400_CHANNEL_BW, FPGA_DDR3_BW


def make_embedding_cache(entries=8, ed=4, associativity=1):
    cfg = EmbeddingCacheConfig(size_bytes=entries * ed * 4, embedding_dim=ed)
    return EmbeddingCache(cfg, associativity=associativity)


class TestEmbeddingCache:
    def test_miss_then_hit(self):
        cache = make_embedding_cache()
        assert cache.lookup(3) is None
        cache.insert(3, np.zeros(4))
        assert cache.lookup(3) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_vector_roundtrip(self, rng):
        cache = make_embedding_cache()
        vec = rng.normal(size=4)
        cache.insert(5, vec)
        np.testing.assert_array_equal(cache.lookup(5), vec)

    def test_direct_mapped_conflict(self):
        cache = make_embedding_cache(entries=8)
        cache.insert(1, np.zeros(4))
        cache.insert(9, np.zeros(4))  # 9 % 8 == 1: conflict
        assert cache.lookup(1) is None
        assert cache.stats.conflict_evictions == 1

    def test_associativity_resolves_conflict(self):
        cache = make_embedding_cache(entries=8, associativity=2)
        cache.insert(1, np.zeros(4))
        cache.insert(5, np.zeros(4))  # same set (8/2 = 4 sets; 1 % 4 == 5 % 4)
        assert cache.lookup(1) is not None
        assert cache.lookup(5) is not None

    def test_touch_trace_mode(self):
        cache = make_embedding_cache()
        assert not cache.probe(2)
        assert cache.probe(2)

    def test_simulate_stream(self):
        cache = make_embedding_cache(entries=4)
        stats = cache.simulate_stream([1, 1, 1, 2, 2])
        assert stats.hits == 3
        assert stats.misses == 2

    def test_reset(self):
        cache = make_embedding_cache()
        cache.probe(1)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.probe(1)

    def test_vector_shape_validated(self):
        cache = make_embedding_cache(ed=4)
        with pytest.raises(ValueError, match="shape"):
            cache.insert(1, np.zeros(5))

    def test_negative_word_id_rejected(self):
        with pytest.raises(ValueError):
            make_embedding_cache().probe(-1)

    def test_bad_associativity_rejected(self):
        with pytest.raises(ValueError, match="associativity"):
            make_embedding_cache(entries=8, associativity=3)

    def test_frequent_words_stay_cached(self, rng):
        """Zipf-like reuse: a hot word keeps hitting despite cold traffic
        mapping to other sets."""
        cache = make_embedding_cache(entries=16)
        hot = 5
        for i in range(100):
            cache.probe(hot)
            cache.probe(16 + 16 * i + (hot + 1) % 16)  # cold, different set
        # All hot accesses after the first must hit.
        assert cache.stats.hits >= 99


class TestDramModel:
    def test_peak_bandwidth_scales_with_channels(self):
        two = DramModel(channels=2)
        four = DramModel(channels=4)
        assert four.peak_bandwidth == pytest.approx(2 * two.peak_bandwidth)

    def test_transfer_time(self):
        dram = DramModel(channels=1, channel_bandwidth=1e9)
        assert dram.transfer_time(1e9) == pytest.approx(1.0)

    def test_loaded_transfer_slower(self):
        dram = DramModel()
        assert dram.loaded_transfer_time(1e6, 0.5) == pytest.approx(
            2 * dram.transfer_time(1e6)
        )

    def test_loaded_fraction_validated(self):
        with pytest.raises(ValueError):
            DramModel().loaded_transfer_time(1.0, 0.0)

    def test_random_access_includes_latency(self):
        dram = DramModel(channels=1, channel_bandwidth=1e12, access_latency=100e-9)
        # Bandwidth is effectively free; latency dominates.
        assert dram.random_access_time(1000, 64) >= 1000 * 100e-9

    def test_constants_match_paper_platforms(self):
        # DDR4-2400: 19.2 GB/s per channel; ZedBoard DDR3: 32-bit @ 533 MHz.
        assert DDR4_2400_CHANNEL_BW == pytest.approx(19.2e9)
        assert FPGA_DDR3_BW == pytest.approx(533e6 * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(channels=0)


class TestMemoryHierarchy:
    def make(self):
        return MemoryHierarchy(
            SetAssociativeCache(size_bytes=1024, line_bytes=64, associativity=2),
            DramModel(),
        )

    def test_stream_separation(self):
        h = self.make()
        h.access(Access(0, 8, stream="inference"))
        h.access(Access(0, 8, stream="embedding"))
        assert h.stream("inference").demand_misses == 1
        assert h.stream("embedding").hits == 1

    def test_dram_bytes_charged_per_line(self):
        h = self.make()
        h.access(Access(0, 128))
        assert h.stream("inference").dram_bytes == 2 * 64

    def test_prefetch_not_counted_as_offchip_access(self):
        h = self.make()
        h.prefetch(Prefetch(0, 128))
        h.access(Access(0, 128))
        summary = h.stream("inference")
        assert summary.demand_misses == 0
        assert summary.offchip_accesses == 0
        assert summary.prefetch_fills == 2
        # ... but the traffic itself still crossed the pins.
        assert summary.dram_bytes == 128

    def test_bypass_counts_offchip(self):
        h = self.make()
        h.access(Access(0, 64, bypass=True, stream="embedding"))
        assert h.stream("embedding").offchip_accesses == 1

    def test_run_trace_and_total(self):
        h = self.make()
        trace = [Access(i * 64, 64) for i in range(4)]
        h.run_trace(trace)
        assert h.total().demand_misses == 4

    def test_run_trace_rejects_junk(self):
        h = self.make()
        with pytest.raises(TypeError):
            h.run_trace(["not an access"])

    def test_amat_grows_with_miss_rate(self):
        h = self.make()
        h.access(Access(0, 8))
        cold = h.amat("inference")
        for _ in range(100):
            h.access(Access(0, 8))
        warm = h.amat("inference")
        assert warm < cold
