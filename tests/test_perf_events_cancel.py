"""Tests for process cancellation and deadline-aware Acquire."""

import pytest

from repro.perf.events import (
    Acquire,
    Cancelled,
    Release,
    Resource,
    SharedBandwidth,
    Simulator,
    Timeout,
    Transfer,
    WaitFor,
)


class TestCancel:
    def test_cancel_mid_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield Timeout(10.0)
                log.append("finished")
            except Cancelled as exc:
                log.append(f"cancelled:{exc.reason}")

        def killer(target):
            yield Timeout(3.0)
            assert sim.cancel(target, "deadline")

        p = sim.spawn(proc())
        sim.spawn(killer(p))
        sim.run()
        assert log == ["cancelled:deadline"]
        assert p.done and p.cancelled
        assert p.finish_time == pytest.approx(3.0)

    def test_stale_timer_does_not_double_step(self):
        """A caught cancellation may keep yielding; the original Timeout
        wakeup must not resume the process a second time."""
        sim = Simulator()
        log = []

        def proc():
            try:
                yield Timeout(10.0)
            except Cancelled:
                yield Timeout(1.0)  # cleanup work after the cancel
                log.append(sim.now)

        def killer(target):
            yield Timeout(2.0)
            sim.cancel(target)

        p = sim.spawn(proc())
        sim.spawn(killer(p))
        sim.run()
        # Resumed exactly once after cleanup, not again at t=10.
        assert log == [pytest.approx(3.0)]
        assert p.finish_time == pytest.approx(3.0)

    def test_cancel_releases_resource_via_cleanup(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        finish = {}

        def holder():
            yield Acquire(res)
            try:
                yield Timeout(100.0)
            except Cancelled:
                yield Release(res)

        def waiter():
            yield Acquire(res)
            finish["waiter"] = sim.now
            yield Release(res)

        h = sim.spawn(holder())

        def killer():
            yield Timeout(5.0)
            sim.cancel(h)

        sim.spawn(waiter())
        sim.spawn(killer())
        sim.run()
        # The waiter got the unit as soon as the holder was cancelled.
        assert finish["waiter"] == pytest.approx(5.0)
        assert res.in_use == 0

    def test_cancel_removes_queued_waiter(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def proc(name, hold):
            granted = yield Acquire(res)
            assert granted is True
            order.append(name)
            yield Timeout(hold)
            yield Release(res)

        sim.spawn(proc("a", 5.0))
        b = sim.spawn(proc("b", 5.0))
        sim.spawn(proc("c", 5.0))

        def killer():
            yield Timeout(1.0)
            sim.cancel(b)

        sim.spawn(killer())
        sim.run()
        assert order == ["a", "c"]
        assert res.queue_depth == 0

    def test_cancel_finished_process_is_noop(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        p = sim.spawn(proc())
        sim.run()
        assert sim.cancel(p) is False

    def test_waitfor_on_cancelled_process_fires(self):
        sim = Simulator()
        finish = {}

        def child():
            yield Timeout(50.0)

        c = sim.spawn(child())

        def parent():
            yield WaitFor(c)
            finish["parent"] = sim.now

        def killer():
            yield Timeout(2.0)
            sim.cancel(c)

        sim.spawn(parent())
        sim.spawn(killer())
        sim.run()
        assert finish["parent"] == pytest.approx(2.0)

    def test_cancel_mid_transfer_frees_the_link(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=10.0)
        finish = {}

        def mover(name, nbytes):
            try:
                yield Transfer(link, nbytes)
                finish[name] = sim.now
            except Cancelled:
                pass

        sim.spawn(mover("keep", 100.0))
        doomed = sim.spawn(mover("doomed", 100.0))

        def killer():
            yield Timeout(2.0)
            sim.cancel(doomed)

        sim.spawn(killer())
        sim.run()
        # Shared 0-2s (10 moved), then full rate: 90 remaining at 10/s.
        assert finish["keep"] == pytest.approx(11.0)
        assert "doomed" not in finish
        assert link.active_transfers == 0


class TestAcquireTimeout:
    def test_timeout_while_queued_resumes_false(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        outcome = {}

        def holder():
            yield Acquire(res)
            yield Timeout(10.0)
            yield Release(res)

        def impatient():
            granted = yield Acquire(res, timeout=3.0)
            outcome["granted"] = granted
            outcome["at"] = sim.now
            if granted:
                yield Release(res)

        sim.spawn(holder())
        sim.spawn(impatient())
        sim.run()
        assert outcome["granted"] is False
        assert outcome["at"] == pytest.approx(3.0)
        assert res.queue_depth == 0
        assert res.in_use == 0  # the holder finished and released

    def test_grant_before_timeout_resumes_true(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        outcome = {}

        def holder():
            yield Acquire(res)
            yield Timeout(1.0)
            yield Release(res)

        def patient():
            granted = yield Acquire(res, timeout=5.0)
            outcome["granted"] = granted
            outcome["at"] = sim.now
            yield Release(res)

        sim.spawn(holder())
        sim.spawn(patient())
        sim.run()
        assert outcome["granted"] is True
        assert outcome["at"] == pytest.approx(1.0)

    def test_stale_acquire_timer_after_grant(self):
        """The expired timer of an already-granted Acquire is inert."""
        sim = Simulator()
        res = Resource(sim, capacity=1)
        resumes = []

        def holder():
            yield Acquire(res)
            yield Timeout(1.0)
            yield Release(res)

        def proc():
            granted = yield Acquire(res, timeout=4.0)
            resumes.append((sim.now, granted))
            yield Timeout(10.0)  # still in service when the timer fires
            yield Release(res)

        sim.spawn(holder())
        sim.spawn(proc())
        sim.run()
        assert resumes == [(pytest.approx(1.0), True)]

    def test_immediate_grant_with_timeout(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        outcome = {}

        def proc():
            granted = yield Acquire(res, timeout=1.0)
            outcome["granted"] = granted
            yield Release(res)

        sim.spawn(proc())
        sim.run()
        assert outcome["granted"] is True

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Acquire(Resource(Simulator(), 1), timeout=-1.0)

    def test_fifo_preserved_after_timeouts(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def holder():
            yield Acquire(res)
            yield Timeout(10.0)
            yield Release(res)

        def proc(name, timeout):
            granted = yield Acquire(res, timeout=timeout)
            if granted:
                order.append(name)
                yield Timeout(1.0)
                yield Release(res)

        sim.spawn(holder())
        sim.spawn(proc("quits", 2.0))
        sim.spawn(proc("stays-1", 100.0))
        sim.spawn(proc("stays-2", 100.0))
        sim.run()
        assert order == ["stays-1", "stays-2"]
