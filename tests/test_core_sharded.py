"""Differential tests for sharded lazy-softmax attention (ISSUE 2).

The sharded path must be *exact*: for any shard count and policy the
merged output equals single-shard column mode (and the baseline) to
1e-10, the merge must be associative/commutative up to max-rescaling
round-off, and degenerate partitions (more shards than rows, empty
shards, single-row shards) must still cover every row exactly once.
"""

import numpy as np
import pytest

from repro.core import (
    BaselineMemNN,
    ChunkConfig,
    ColumnMemNN,
    EngineConfig,
    EngineWeights,
    MemNNConfig,
    MnnFastEngine,
    ShardedMemNN,
    ShardPlan,
    ZeroSkipConfig,
)
from repro.core.column import PartialOutput

#: Documented agreement bound between answer-producing paths.
TOLERANCE = 1e-10

SHARD_COUNTS = (1, 2, 3, 8)
POLICIES = ("contiguous", "strided")


@pytest.fixture
def memories(rng):
    ns, ed = 97, 8  # prime row count: uneven shards under both policies
    return rng.normal(size=(ns, ed)), rng.normal(size=(ns, ed))


@pytest.fixture
def u(rng):
    return rng.normal(size=(5, 8))


class TestShardPlan:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", (1, 2, 3, 8, 97, 150))
    def test_covers_every_row_exactly_once(self, policy, num_shards):
        plan = ShardPlan(97, num_shards, policy)
        seen = np.concatenate([plan.indices(k) for k in range(num_shards)])
        np.testing.assert_array_equal(np.sort(seen), np.arange(97))

    def test_contiguous_shards_are_runs(self):
        plan = ShardPlan(10, 3, "contiguous")
        for k in range(3):
            idx = plan.indices(k)
            np.testing.assert_array_equal(idx, np.arange(idx[0], idx[-1] + 1))

    def test_strided_shards_interleave(self):
        plan = ShardPlan(10, 3, "strided")
        np.testing.assert_array_equal(plan.indices(0), [0, 3, 6, 9])
        np.testing.assert_array_equal(plan.indices(1), [1, 4, 7])

    def test_more_shards_than_rows_leaves_empty_shards(self):
        plan = ShardPlan(3, 8, "contiguous")
        assert sum(plan.shard_sizes) == 3
        assert plan.num_nonempty <= 3
        assert 0 in plan.shard_sizes

    def test_max_shard_rows(self):
        assert ShardPlan(10, 3, "contiguous").max_shard_rows == 4
        assert ShardPlan(10, 3, "strided").max_shard_rows == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardPlan(10, 0)
        with pytest.raises(ValueError, match="policy"):
            ShardPlan(10, 2, "random")
        with pytest.raises(ValueError, match="num_rows"):
            ShardPlan(-1, 2)
        with pytest.raises(ValueError, match="shard must be"):
            ShardPlan(10, 2).indices(2)


class TestShardedMatchesSingleShard:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("stable", (True, False))
    def test_output_matches_column_and_baseline(
        self, memories, u, num_shards, policy, stable
    ):
        m_in, m_out = memories
        chunk = ChunkConfig(16)
        column = ColumnMemNN(m_in, m_out, chunk=chunk).output(u, stable=stable)
        baseline = BaselineMemNN(m_in, m_out).output(u, stable=stable)
        sharded = ShardedMemNN(
            m_in, m_out, num_shards=num_shards, policy=policy, chunk=chunk
        ).output(u, stable=stable)
        np.testing.assert_allclose(
            sharded.output, column.output, rtol=TOLERANCE, atol=TOLERANCE
        )
        np.testing.assert_allclose(
            sharded.output, baseline.output, rtol=TOLERANCE, atol=TOLERANCE
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_exp_mode_zero_skip_matches_column(self, memories, u, policy):
        # Exp-mode skipping decides per raw score, so the decision is
        # shard-independent: sharded == single-shard even with skipping.
        m_in, m_out = memories
        skip = ZeroSkipConfig(threshold=0.01, mode="exp")
        column = ColumnMemNN(m_in, m_out).output(u, zero_skip=skip)
        sharded = ShardedMemNN(m_in, m_out, num_shards=4, policy=policy).output(
            u, zero_skip=skip
        )
        np.testing.assert_allclose(
            sharded.output, column.output, rtol=TOLERANCE, atol=TOLERANCE
        )
        assert sharded.stats.rows_skipped == column.stats.rows_skipped

    def test_shard_stats_reported_per_shard(self, memories, u):
        m_in, m_out = memories
        result = ShardedMemNN(m_in, m_out, num_shards=4).output(u)
        shard_stats = result.tier_stats()["shards"]
        assert shard_stats is not None
        assert len(shard_stats) == 4
        rows = sum(s.rows_computed for s in shard_stats)
        assert rows == u.shape[0] * m_in.shape[0]
        # Aggregate counters include the shards plus the merge cost.
        assert result.stats.flops > sum(s.flops for s in shard_stats)

    def test_partial_output_composes_with_column_partials(self, memories, u):
        # A sharded node's merged partial merges against a plain column
        # partial from elsewhere — the cluster-reduction contract.
        m_in, m_out = memories
        left_rows = 60
        node = ShardedMemNN(m_in[:left_rows], m_out[:left_rows], num_shards=3)
        remote = ColumnMemNN(m_in[left_rows:], m_out[left_rows:])
        partial, _ = node.partial_output(u)
        remote_partial, _ = remote.partial_output(u)
        merged = partial.merge(remote_partial)
        full = ColumnMemNN(m_in, m_out).output(u)
        np.testing.assert_allclose(
            merged.finalize(), full.output, rtol=TOLERANCE, atol=TOLERANCE
        )


class TestMergeAssociativity:
    def _partials(self, memories, u, num_shards=6):
        m_in, m_out = memories
        solver = ShardedMemNN(m_in, m_out, num_shards=num_shards)
        return [p for p, _ in solver.shard_partials(u)]

    def test_merge_order_invariant(self, memories, u, rng):
        partials = self._partials(memories, u)
        reference = partials[0]
        for p in partials[1:]:
            reference = reference.merge(p)
        for _ in range(5):
            order = rng.permutation(len(partials))
            merged = partials[order[0]]
            for i in order[1:]:
                merged = merged.merge(partials[i])
            np.testing.assert_allclose(
                merged.finalize(),
                reference.finalize(),
                rtol=TOLERANCE,
                atol=TOLERANCE,
            )

    def test_merge_grouping_invariant(self, memories, u):
        partials = self._partials(memories, u)
        left_fold = partials[0]
        for p in partials[1:]:
            left_fold = left_fold.merge(p)
        # Balanced tree reduction, the shape a coordinator really uses.
        level = list(partials)
        while len(level) > 1:
            level = [
                level[i].merge(level[i + 1]) if i + 1 < len(level) else level[i]
                for i in range(0, len(level), 2)
            ]
        np.testing.assert_allclose(
            level[0].finalize(),
            left_fold.finalize(),
            rtol=TOLERANCE,
            atol=TOLERANCE,
        )

    def test_empty_partial_is_identity(self, memories, u):
        partials = self._partials(memories, u, num_shards=2)
        merged = partials[0].merge(partials[1])
        identity = PartialOutput.empty(u.shape[0], memories[0].shape[1])
        with_identity = identity.merge(partials[0]).merge(partials[1])
        np.testing.assert_allclose(
            with_identity.finalize(), merged.finalize(), rtol=1e-15
        )


class TestEdgeCases:
    def test_more_shards_than_sentences(self, rng, u):
        m_in, m_out = rng.normal(size=(3, 8)), rng.normal(size=(3, 8))
        for policy in POLICIES:
            sharded = ShardedMemNN(m_in, m_out, num_shards=8, policy=policy)
            column = ColumnMemNN(m_in, m_out)
            np.testing.assert_allclose(
                sharded.output(u).output,
                column.output(u).output,
                rtol=TOLERANCE,
                atol=TOLERANCE,
            )

    def test_empty_shard_contributes_identity(self, rng, u):
        m_in, m_out = rng.normal(size=(3, 8)), rng.normal(size=(3, 8))
        solver = ShardedMemNN(m_in, m_out, num_shards=8)
        pairs = solver.shard_partials(u)
        empties = [p for p, _ in pairs if np.all(np.isneginf(p.log_max))]
        assert empties, "expected at least one empty shard"
        for partial in empties:
            assert np.all(partial.denom == 0.0)
            assert np.all(partial.weighted == 0.0)

    def test_single_row_shards(self, rng, u):
        ns = 8
        m_in, m_out = rng.normal(size=(ns, 8)), rng.normal(size=(ns, 8))
        sharded = ShardedMemNN(m_in, m_out, num_shards=ns)
        assert all(size == 1 for size in sharded.plan.shard_sizes)
        column = ColumnMemNN(m_in, m_out)
        np.testing.assert_allclose(
            sharded.output(u).output,
            column.output(u).output,
            rtol=TOLERANCE,
            atol=TOLERANCE,
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="shapes differ"):
            ShardedMemNN(rng.normal(size=(4, 3)), rng.normal(size=(5, 3)))
        with pytest.raises(ValueError, match="2-D"):
            ShardedMemNN(rng.normal(size=(4,)), rng.normal(size=(4,)))


class TestEngineSharded:
    @pytest.fixture
    def setup(self, rng):
        config = MemNNConfig(
            embedding_dim=16, num_sentences=100, num_questions=4,
            vocab_size=50, max_words=6, hops=2,
        )
        weights = EngineWeights.random(config, rng=np.random.default_rng(7))
        story = rng.integers(1, 50, size=(33, 6))
        questions = rng.integers(1, 50, size=(4, 6))
        return config, weights, story, questions

    def _answer(self, setup, engine_config):
        config, weights, story, questions = setup
        engine = MnnFastEngine(config, weights, engine_config=engine_config)
        engine.store_story(story)
        return engine.answer(questions)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_engine_logits_match_all_paths(self, setup, num_shards, policy):
        baseline = self._answer(setup, EngineConfig.baseline())
        column = self._answer(setup, EngineConfig(algorithm="column"))
        sharded = self._answer(setup, EngineConfig.sharded(num_shards, policy))
        np.testing.assert_allclose(
            sharded.logits, column.logits, rtol=TOLERANCE, atol=TOLERANCE
        )
        np.testing.assert_allclose(
            sharded.logits, baseline.logits, rtol=TOLERANCE, atol=TOLERANCE
        )
        np.testing.assert_array_equal(sharded.answer_ids, baseline.answer_ids)

    def test_engine_reports_per_hop_shard_stats(self, setup):
        result = self._answer(setup, EngineConfig.sharded(3))
        per_hop_shards = result.tier_stats()["shards"]
        assert len(per_hop_shards) == 2  # hops
        assert all(len(per_hop) == 3 for per_hop in per_hop_shards)
        unsharded = self._answer(setup, EngineConfig(algorithm="column"))
        assert all(not per_hop for per_hop in unsharded.tier_stats()["shards"])

    def test_config_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            EngineConfig(algorithm="sharded", num_shards=0)
        with pytest.raises(ValueError, match="shard_policy"):
            EngineConfig(algorithm="sharded", num_shards=2, shard_policy="x")
        # Cross-field coupling surfaces at validate() time, so builder
        # chains can pass through the intermediate state.
        with pytest.raises(ValueError, match="requires algorithm='sharded'"):
            EngineConfig(algorithm="column", num_shards=2).validate()
