"""Differential grid for the approximate top-k tier (ISSUE 6).

The tier composes with every other optimization the engine offers —
zero-skipping, sharded fan-out, the out-of-core store — and its
quality contract must hold across the whole grid:

* **answer agreement** with the exact engine >= 0.99 and
  **attention-mass recall** >= 0.95 at the default ``nprobe``, on the
  topical workload (the concentrated-attention regime the tier is
  built for);
* in **exact-scan fallback** (memory at or below ``min_rows``) the
  tier is not approximate at all: logits agree with the exact engine
  to the repo-wide 1e-10 bound.

Quality measurement runs over *small batches*: candidates are unioned
across each kernel pass, so one big batch would cover most clusters
and make the floors trivially (and meaninglessly) easy.
"""

import itertools

import numpy as np
import pytest

from repro.core import EngineConfig, EngineWeights, MemNNConfig, MnnFastEngine
from repro.index import synthetic_topical_workload

AGREEMENT_FLOOR = 0.99
RECALL_FLOOR = 0.95
LOGIT_TOLERANCE = 1e-10  # fallback mode — same bound as the exact paths

NS, ED, NW, VOCAB = 4_096, 32, 8, 2_000
NQ_BATCH, NUM_BATCHES = 8, 16  # 128 questions: floors hold a 1-miss slack

#: Zero-skip grid dimension uses *exp-mode* thresholds: the keep
#: decision depends only on raw scores, so it is identical on the
#: candidate subset and the full memory (the same subset-independence
#: the sharded suite relies on) and the grid isolates the retrieval
#: approximation.  Probability-mode thresholds renormalize over the
#: candidate set by definition — that interaction is pinned separately
#: in :func:`test_probability_skip_renormalizes_over_candidates`.
ZERO_SKIPS = (0.0, 0.01)
STORES = ("resident", "mmap")
SHARDS = (1, 3)


@pytest.fixture(scope="module")
def workload():
    config = MemNNConfig(
        embedding_dim=ED, num_sentences=NS, num_questions=NQ_BATCH,
        vocab_size=VOCAB, max_words=NW, hops=1,
    )
    rng = np.random.default_rng(42)
    weights = EngineWeights.random(config, rng=rng, scale=0.35)
    stories, questions = synthetic_topical_workload(
        config, NQ_BATCH * NUM_BATCHES, rng=rng
    )
    return config, weights, stories, questions


def _grid_config(zero_skip, store, shards, tmp_path) -> EngineConfig:
    config = EngineConfig(algorithm="column")
    if zero_skip:
        config = config.with_zero_skip(zero_skip, mode="exp")
    if shards > 1:
        config = config.with_sharding(shards)
    if store == "mmap":
        config = config.with_store(
            backend="mmap", path=str(tmp_path / "memories")
        )
    return config


def _answers_per_batch(config, weights, stories, questions, engine_config):
    engine = MnnFastEngine(config, weights, engine_config=engine_config)
    engine.store_story(stories)
    results = []
    for i in range(NUM_BATCHES):
        batch = questions[i * NQ_BATCH:(i + 1) * NQ_BATCH]
        results.append(engine.answer(batch))
    return results


@pytest.mark.parametrize(
    "zero_skip,store,shards",
    list(itertools.product(ZERO_SKIPS, STORES, SHARDS)),
    ids=lambda v: str(v),
)
def test_grid_holds_quality_floors(workload, tmp_path, zero_skip, store, shards):
    config, weights, stories, questions = workload
    base = _grid_config(zero_skip, store, shards, tmp_path)
    topk_cfg = base.with_topk(nprobe=8, min_rows=0, measure_recall=True)

    exact = _answers_per_batch(config, weights, stories, questions, base)
    topk = _answers_per_batch(config, weights, stories, questions, topk_cfg)

    agree = 0
    recalls = []
    used_index = False
    for e, t in zip(exact, topk):
        agree += int(np.sum(e.answer_ids == t.answer_ids))
        for s in t.tier_stats()["index"]:
            assert s is not None
            used_index = used_index or s.used_index
            if s.recall is not None:
                recalls.append(s.recall)
    agreement = agree / len(questions)

    assert used_index, "grid point never exercised the index"
    assert agreement >= AGREEMENT_FLOOR, (
        f"agreement {agreement:.4f} under zero_skip={zero_skip}, "
        f"store={store}, shards={shards}"
    )
    assert float(np.mean(recalls)) >= RECALL_FLOOR, (
        f"mean recall {np.mean(recalls):.4f} under zero_skip={zero_skip}, "
        f"store={store}, shards={shards}"
    )


def test_probability_skip_renormalizes_over_candidates(workload):
    """Probability-mode zero-skipping composes with the tier but its
    threshold applies to the *candidate-renormalized* distribution, so
    the keep mask can differ from the exact engine's near the
    threshold — a documented semantic interaction, pinned here at a
    bound looser than the retrieval-only floor."""
    config, weights, stories, questions = workload
    base = EngineConfig(algorithm="column").with_zero_skip(0.1)
    topk_cfg = base.with_topk(nprobe=8, min_rows=0)

    exact = _answers_per_batch(config, weights, stories, questions, base)
    topk = _answers_per_batch(config, weights, stories, questions, topk_cfg)
    agree = sum(
        int(np.sum(e.answer_ids == t.answer_ids))
        for e, t in zip(exact, topk)
    )
    assert agree / len(questions) >= 0.95


@pytest.mark.parametrize(
    "zero_skip,store,shards",
    list(itertools.product(ZERO_SKIPS, STORES, SHARDS)),
    ids=lambda v: str(v),
)
def test_grid_fallback_is_exact(tmp_path, zero_skip, store, shards):
    """With the memory at or below ``min_rows`` the tier delegates to
    the configured exact path — logits agree to 1e-10 everywhere on
    the grid (so enabling top-k is always safe: small memories lose
    nothing)."""
    ns = 96
    config = MemNNConfig(
        embedding_dim=16, num_sentences=ns, num_questions=4,
        vocab_size=200, max_words=6, hops=2,
    )
    rng = np.random.default_rng(9)
    weights = EngineWeights.random(config, rng=rng)
    stories = rng.integers(1, 200, size=(ns, 6))
    questions = rng.integers(1, 200, size=(4, 6))

    base = _grid_config(zero_skip, store, shards, tmp_path)
    topk_cfg = base.with_topk(nprobe=8)  # default min_rows >> ns
    results = {}
    for name, cfg in (("exact", base), ("topk", topk_cfg)):
        engine = MnnFastEngine(config, weights, engine_config=cfg)
        engine.store_story(stories)
        results[name] = engine.answer(questions)

    np.testing.assert_allclose(
        results["topk"].logits, results["exact"].logits,
        rtol=LOGIT_TOLERANCE, atol=LOGIT_TOLERANCE,
    )
    np.testing.assert_array_equal(
        results["topk"].answer_ids, results["exact"].answer_ids
    )
    index_stats = [
        s for s in results["topk"].tier_stats()["index"] if s is not None
    ]
    assert index_stats and not any(s.used_index for s in index_stats)
