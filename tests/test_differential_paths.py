"""Cross-path differential harness over every answer-producing engine.

Four paths can answer a question batch — baseline (Fig. 5a), column
(Fig. 5b), column+zero-skip (§3.2) and sharded (§3.1 scale-out) — and
the repo's correctness story is that they agree.  This harness sweeps
the full ``algorithm × zero_skip × stable_softmax × cache ×
execution-backend`` grid
through :meth:`MnnFastEngine.answer` on seeded random engines and
asserts pairwise agreement under the documented tolerance bounds:

* **logits**: all paths with ``th_skip = 0`` are algebraic
  rearrangements of the same expression — they agree to
  ``LOGIT_TOLERANCE`` (1e-10, observed ~1e-15).  Zero-skipping is
  only compared at ``th_skip = 0``, where it must be exact; a positive
  threshold legitimately changes the output.
* **argmax answers**: identical across every configuration pair.
* **cache**: attaching an embedding cache is a pure routing change —
  the embedded question (and hence every downstream number) is
  bitwise identical with and without it.
"""

import itertools

import numpy as np
import pytest

from repro.core import (
    ChunkConfig,
    EngineConfig,
    EngineWeights,
    ExecutionConfig,
    MemNNConfig,
    MnnFastEngine,
    ZeroSkipConfig,
)

#: Documented pairwise logit-agreement bound for exact paths.
LOGIT_TOLERANCE = 1e-10

SEEDS = (0, 1, 2)


def _engine_configs():
    """Every answer-producing engine path, at th_skip=0 (exact)."""
    zero_skip_off = ZeroSkipConfig(0.0)
    zero_skip_zero_threshold = ZeroSkipConfig(0.0, mode="exp")
    configs = {}
    for stable in (True, False):
        configs[("baseline", stable)] = EngineConfig(
            algorithm="baseline", stable_softmax=stable
        )
        configs[("column", stable)] = EngineConfig(
            algorithm="column", chunk=ChunkConfig(16), stable_softmax=stable
        )
        configs[("column+skip0", stable)] = EngineConfig(
            algorithm="column",
            chunk=ChunkConfig(16),
            zero_skip=zero_skip_zero_threshold,
            stable_softmax=stable,
        )
        configs[("sharded-contig", stable)] = EngineConfig(
            algorithm="sharded",
            num_shards=3,
            shard_policy="contiguous",
            chunk=ChunkConfig(16),
            stable_softmax=stable,
        )
        configs[("sharded-strided", stable)] = EngineConfig(
            algorithm="sharded",
            num_shards=4,
            shard_policy="strided",
            chunk=ChunkConfig(16),
            stable_softmax=stable,
        )
        configs[("zero_skip_off", stable)] = EngineConfig(
            algorithm="column", zero_skip=zero_skip_off, stable_softmax=stable
        )
        configs[("sharded-thread2", stable)] = EngineConfig(
            algorithm="sharded",
            num_shards=4,
            shard_policy="contiguous",
            chunk=ChunkConfig(16),
            stable_softmax=stable,
            execution=ExecutionConfig(backend="thread", num_workers=2),
        )
        configs[("sharded-strided-thread4", stable)] = EngineConfig(
            algorithm="sharded",
            num_shards=4,
            shard_policy="strided",
            chunk=ChunkConfig(16),
            stable_softmax=stable,
            execution=ExecutionConfig(backend="thread", num_workers=4),
        )
        configs[("sharded-process2", stable)] = EngineConfig(
            algorithm="sharded",
            num_shards=4,
            shard_policy="contiguous",
            chunk=ChunkConfig(16),
            stable_softmax=stable,
            execution=ExecutionConfig(backend="process", num_workers=2),
        )
        configs[("sharded-fused", stable)] = EngineConfig(
            algorithm="sharded",
            num_shards=3,
            shard_policy="strided",
            chunk=ChunkConfig(16),
            stable_softmax=stable,
            execution=ExecutionConfig(fused=True),
        )
    return configs


class DictCache:
    """Minimal VectorCache backed by a dict (always hits after insert)."""

    def __init__(self):
        self.store = {}

    def lookup(self, word_id):
        return self.store.get(word_id)

    def insert(self, word_id, vector):
        self.store[word_id] = np.array(vector)


def _random_problem(seed):
    rng = np.random.default_rng(seed)
    config = MemNNConfig(
        embedding_dim=16,
        num_sentences=200,
        num_questions=4,
        vocab_size=60,
        max_words=6,
        hops=2,
    )
    weights = EngineWeights.random(config, rng=rng)
    story = rng.integers(1, 60, size=(53, 6))
    questions = rng.integers(1, 60, size=(4, 6))
    return config, weights, story, questions


def _answers(seed, use_cache=False):
    config, weights, story, questions = _random_problem(seed)
    results = {}
    for key, engine_config in _engine_configs().items():
        engine = MnnFastEngine(config, weights, engine_config=engine_config)
        engine.store_story(story)
        cache = DictCache() if use_cache else None
        results[key] = engine.answer(questions, cache=cache)
        # Process-backed engines own worker pools; release them rather
        # than leaving teardown to GC while the grid keeps growing.
        engine.close()
    return results


@pytest.mark.parametrize("seed", SEEDS)
class TestAllPathsAgree:
    def test_every_pair_of_paths_agrees(self, seed):
        results = _answers(seed)
        for (ka, ra), (kb, rb) in itertools.combinations(results.items(), 2):
            np.testing.assert_allclose(
                ra.logits,
                rb.logits,
                rtol=LOGIT_TOLERANCE,
                atol=LOGIT_TOLERANCE,
                err_msg=f"logits diverge between {ka} and {kb}",
            )
            np.testing.assert_array_equal(
                ra.answer_ids,
                rb.answer_ids,
                err_msg=f"argmax answers diverge between {ka} and {kb}",
            )

    def test_responses_and_probabilities_agree(self, seed):
        results = _answers(seed)
        reference = results[("baseline", True)]
        for key, result in results.items():
            np.testing.assert_allclose(
                result.response,
                reference.response,
                rtol=LOGIT_TOLERANCE,
                atol=LOGIT_TOLERANCE,
                err_msg=f"response diverges on {key}",
            )
            np.testing.assert_allclose(
                result.answer_probabilities,
                reference.answer_probabilities,
                rtol=LOGIT_TOLERANCE,
                atol=LOGIT_TOLERANCE,
                err_msg=f"answer probabilities diverge on {key}",
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_embedding_cache_is_pure_routing(seed):
    """The cache changes where vectors come from, never their values:
    every path's logits are bitwise identical with and without it."""
    without = _answers(seed, use_cache=False)
    with_cache = _answers(seed, use_cache=True)
    for key in without:
        np.testing.assert_array_equal(
            without[key].logits,
            with_cache[key].logits,
            err_msg=f"cache changed the numbers on {key}",
        )
    assert all(r.cache_misses > 0 for r in with_cache.values())


@pytest.mark.parametrize("mode", ("probability", "exp"))
def test_positive_threshold_still_agrees_on_answers(mode):
    """A small positive th_skip may perturb logits (documented: it
    drops sub-threshold mass) but must not flip the argmax answer on
    well-separated problems."""
    config, weights, story, questions = _random_problem(0)
    exact = MnnFastEngine(
        config, weights, engine_config=EngineConfig(algorithm="column")
    )
    exact.store_story(story)
    skipping = MnnFastEngine(
        config,
        weights,
        engine_config=EngineConfig(
            algorithm="column", zero_skip=ZeroSkipConfig(0.001, mode=mode)
        ),
    )
    skipping.store_story(story)
    np.testing.assert_array_equal(
        skipping.answer(questions).answer_ids,
        exact.answer(questions).answer_ids,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_disabled_gate_is_bit_identical_across_grid(seed):
    """The early-exit gate at threshold 0 is OFF, not "on with an
    unreachable bar": every engine path — the full algorithm ×
    zero-skip × sharded × execution grid plus the store tier and the
    top-k tier — produces bitwise-identical logits with and without
    ``with_early_exit(0.0)``, and the emitted trace records zero
    exits."""
    config, weights, story, questions = _random_problem(seed)
    grid = dict(_engine_configs())
    grid[("out-of-core", True)] = EngineConfig.out_of_core()
    grid[("topk", True)] = EngineConfig(algorithm="column").with_topk(
        nprobe=2, min_rows=0
    )
    for key, engine_config in grid.items():
        plain = MnnFastEngine(config, weights, engine_config=engine_config)
        gated = MnnFastEngine(
            config, weights,
            engine_config=engine_config.with_early_exit(0.0),
        )
        for engine in (plain, gated):
            engine.store_story(story)
        reference = plain.answer(questions)
        result = gated.answer(questions)
        plain.close()
        gated.close()
        np.testing.assert_array_equal(
            reference.logits,
            result.logits,
            err_msg=f"threshold-0 gate changed the numbers on {key}",
        )
        trace = result.hop_trace
        assert trace.num_exited == 0, key
        assert list(trace.hops_run) == [config.hops] * len(questions), key
        assert trace.confidence == [], key


def test_sharded_zero_skip_exact_at_zero_threshold():
    """Sharding composes with the zero-skip flag: at th=0 the skip
    mask keeps every row, so sharded+skip equals plain baseline."""
    config, weights, story, questions = _random_problem(1)
    engine_config = EngineConfig(
        algorithm="sharded",
        num_shards=4,
        zero_skip=ZeroSkipConfig(0.0, mode="exp"),
    )
    sharded = MnnFastEngine(config, weights, engine_config=engine_config)
    sharded.store_story(story)
    baseline = MnnFastEngine(
        config, weights, engine_config=EngineConfig.baseline()
    )
    baseline.store_story(story)
    np.testing.assert_allclose(
        sharded.answer(questions).logits,
        baseline.answer(questions).logits,
        rtol=LOGIT_TOLERANCE,
        atol=LOGIT_TOLERANCE,
    )
