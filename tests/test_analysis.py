"""Tests for the per-figure analysis drivers."""

import numpy as np
import pytest

from repro.analysis import (
    algorithm_scalability,
    bandwidth_scalability,
    contention_experiment,
    contention_sweep,
    embedding_cache_effectiveness,
    energy_comparison,
    fpga_latency_breakdown,
    gpu_multi_gpu_scaling,
    gpu_stream_scaling,
    offchip_accesses,
    operation_breakdown,
    probability_distribution,
    speedup_over_baseline,
    threshold_sweep,
)
from repro.analysis.contention import DEFAULT_SCALES
from repro.core.config import MemNNConfig


class TestScalabilityDrivers:
    def test_fig3_channels_ordering(self):
        curves = bandwidth_scalability(max_threads=16)
        # At the highest thread count more channels means more speedup.
        assert curves[2][16] <= curves[4][16] <= curves[8][16]

    def test_fig10_all_algorithms_present(self):
        curves = algorithm_scalability(max_threads=8)
        assert set(curves) == {"baseline", "column", "column_streaming", "mnnfast"}

    def test_fig9a_column_cuts_softmax(self):
        breakdown = operation_breakdown(threads=20)
        assert breakdown["column"]["softmax"] < breakdown["baseline"]["softmax"]

    def test_fig9a_streaming_cuts_inner_product(self):
        breakdown = operation_breakdown(threads=20)
        assert (
            breakdown["column_streaming"]["inner_product"]
            < breakdown["baseline"]["inner_product"]
        )

    def test_fig9b_speedups_above_one(self):
        speedups = speedup_over_baseline(max_threads=8)
        assert all(v >= 1.0 for curve in speedups.values() for v in curve.values())


class TestContention:
    def test_degradation_grows_with_threads(self):
        config = DEFAULT_SCALES["medium"]
        few = contention_experiment(config, 1, lookups_per_thread=5000)
        many = contention_experiment(config, 8, lookups_per_thread=5000)
        assert many.relative_performance < few.relative_performance < 1.01

    def test_zero_threads_is_unit(self):
        config = DEFAULT_SCALES["small"]
        result = contention_experiment(config, 0)
        assert result.relative_performance == 1.0

    def test_embedding_cache_removes_contention(self):
        config = DEFAULT_SCALES["medium"]
        shared = contention_experiment(config, 8, lookups_per_thread=5000)
        isolated = contention_experiment(
            config, 8, lookups_per_thread=5000, mode="embedding_cache"
        )
        assert isolated.relative_performance > shared.relative_performance
        assert isolated.relative_performance == pytest.approx(1.0, abs=0.02)

    def test_bypass_also_removes_contention(self):
        config = DEFAULT_SCALES["small"]
        isolated = contention_experiment(
            config, 4, lookups_per_thread=5000, mode="bypass"
        )
        assert isolated.relative_performance == pytest.approx(1.0, abs=0.02)

    def test_sweep_structure(self):
        grid = contention_sweep(
            scales={"tiny": DEFAULT_SCALES["small"]},
            thread_counts=(1, 2),
        )
        assert set(grid) == {"tiny"}
        assert set(grid["tiny"]) == {1, 2}

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            contention_experiment(DEFAULT_SCALES["small"], 1, mode="wrong")

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError):
            contention_experiment(DEFAULT_SCALES["small"], -1)


class TestOffchip:
    def test_fig11_ordering_and_band(self):
        result = offchip_accesses()
        normalized = result.normalized
        assert normalized["baseline"] == 1.0
        assert normalized["column"] < 1.0
        assert normalized["column_streaming"] < normalized["column"]
        # Paper: streaming eliminates >60% of off-chip accesses.
        assert normalized["column_streaming"] < 0.4

    def test_dram_bytes_reported(self):
        result = offchip_accesses()
        assert result.dram_bytes["baseline"] > result.dram_bytes["column"]


class TestPlatformDrivers:
    def test_fig12a_structure(self):
        result = gpu_stream_scaling(stream_counts=(1, 2, 4))
        assert result["speedup"][4] > result["speedup"][1]

    def test_fig12b_gap_monotone(self):
        points = gpu_multi_gpu_scaling(gpu_counts=(1, 2, 4))
        gaps = [p.h2d_contention_gap for p in points]
        assert gaps == sorted(gaps)

    def test_fig13_normalized_to_baseline(self):
        table = fpga_latency_breakdown()
        assert table["baseline"] == pytest.approx(1.0)
        assert table["mnnfast"] < 0.6

    def test_fig14_paper_band(self):
        reductions = embedding_cache_effectiveness(num_lookups=30_000)
        values = list(reductions.values())
        assert values == sorted(values)
        # Paper ladder: 34.5% / 41.7% / 47.7% / 53.1%; accept +-8 points.
        paper = [0.345, 0.417, 0.477, 0.531]
        for measured, expected in zip(values, paper):
            assert measured == pytest.approx(expected, abs=0.08)

    def test_energy_comparison_band(self):
        comparison = energy_comparison()
        assert 5.0 <= comparison.efficiency_ratio <= 8.0


@pytest.mark.slow
class TestTrainedAnalyses:
    """Drivers that require training (kept small; full runs in benches)."""

    def test_fig6_sparsity(self):
        result = probability_distribution(
            task_id=1, num_questions=30, train_examples=200, epochs=15,
            max_sentences=20,
        )
        np.testing.assert_allclose(result.probabilities.sum(axis=1), 1.0)
        # The trained attention is sparse: few entries above 0.1.
        assert result.fraction_above[0.1] < 0.4
        assert result.mean_max > 0.2

    def test_fig7_tradeoff_monotone(self):
        curve = threshold_sweep(
            task_ids=(1,), thresholds=(0.01, 0.1, 0.5),
            train_examples=200, test_examples=50, epochs=15,
        )
        reductions = [p.computation_reduction for p in curve.points]
        assert reductions == sorted(reductions)
        losses = [p.accuracy_loss for p in curve.points]
        assert all(0.0 <= l <= 1.0 for l in losses)

    def test_fig7_requires_tasks(self):
        with pytest.raises(ValueError):
            threshold_sweep(task_ids=())
