"""End-to-end tests for MnnFastEngine."""

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    EngineWeights,
    MemNNConfig,
    MnnFastEngine,
)
from repro.core.numerics import PAD_ID


@pytest.fixture
def config():
    return MemNNConfig(
        embedding_dim=16,
        num_sentences=100,
        num_questions=4,
        vocab_size=50,
        max_words=6,
        hops=1,
    )


@pytest.fixture
def engine(config, rng):
    eng = MnnFastEngine(config, EngineWeights.random(config, rng=rng))
    story = rng.integers(1, 50, size=(40, 6))
    eng.store_story(story)
    return eng


class TestStoryStorage:
    def test_store_appends(self, config, rng):
        eng = MnnFastEngine(config)
        eng.store_story(rng.integers(1, 50, size=(10, 6)))
        eng.store_story(rng.integers(1, 50, size=(5, 6)))
        assert eng.num_stored_sentences == 15

    def test_overflow_raises(self, config, rng):
        eng = MnnFastEngine(config)
        with pytest.raises(ValueError, match="overflows"):
            eng.store_story(rng.integers(1, 50, size=(101, 6)))

    def test_short_sentences_padded(self, config, rng):
        eng = MnnFastEngine(config)
        eng.store_story(rng.integers(1, 50, size=(3, 2)))
        assert eng.num_stored_sentences == 3

    def test_too_wide_sentence_rejected(self, config, rng):
        eng = MnnFastEngine(config)
        with pytest.raises(ValueError, match="nw"):
            eng.store_story(rng.integers(1, 50, size=(3, 7)))

    def test_clear(self, engine):
        engine.clear_memories()
        assert engine.num_stored_sentences == 0

    def test_set_memories_direct(self, config, rng):
        eng = MnnFastEngine(config)
        m = rng.normal(size=(20, 16))
        eng.set_memories(m, m.copy())
        assert eng.num_stored_sentences == 20

    def test_set_memories_validates_width(self, config, rng):
        eng = MnnFastEngine(config)
        m = rng.normal(size=(20, 8))
        with pytest.raises(ValueError, match="ed"):
            eng.set_memories(m, m.copy())


class TestAnswering:
    def test_answer_shapes(self, engine, rng):
        questions = rng.integers(1, 50, size=(4, 6))
        result = engine.answer(questions)
        assert result.answer_ids.shape == (4,)
        assert result.logits.shape == (4, 50)
        assert result.response.shape == (4, 16)
        np.testing.assert_allclose(result.answer_probabilities.sum(axis=1), 1.0)

    def test_answer_without_story_raises(self, config, rng):
        eng = MnnFastEngine(config)
        with pytest.raises(ValueError, match="story"):
            eng.answer(rng.integers(1, 50, size=(1, 6)))

    def test_baseline_and_column_agree(self, config, rng):
        weights = EngineWeights.random(config, rng=np.random.default_rng(7))
        story = rng.integers(1, 50, size=(30, 6))
        questions = rng.integers(1, 50, size=(4, 6))

        outputs = {}
        for name, ecfg in {
            "baseline": EngineConfig.baseline(),
            "column": EngineConfig(algorithm="column"),
        }.items():
            eng = MnnFastEngine(config, weights, engine_config=ecfg)
            eng.store_story(story)
            outputs[name] = eng.answer(questions)
        np.testing.assert_allclose(
            outputs["column"].logits, outputs["baseline"].logits, rtol=1e-10
        )
        np.testing.assert_array_equal(
            outputs["column"].answer_ids, outputs["baseline"].answer_ids
        )

    def test_multi_hop_changes_response(self, config, rng):
        weights = EngineWeights.random(config, rng=np.random.default_rng(7))
        story = rng.integers(1, 50, size=(30, 6))
        questions = rng.integers(1, 50, size=(2, 6))

        responses = {}
        for hops in (1, 3):
            cfg = MemNNConfig(
                embedding_dim=16, num_sentences=100, vocab_size=50,
                max_words=6, hops=hops,
            )
            eng = MnnFastEngine(cfg, weights)
            eng.store_story(story)
            responses[hops] = eng.answer(questions).response
        assert not np.allclose(responses[1], responses[3])

    def test_zero_skip_engine_close_to_exact(self, config, rng):
        weights = EngineWeights.random(config, rng=np.random.default_rng(7))
        story = rng.integers(1, 50, size=(30, 6))
        questions = rng.integers(1, 50, size=(4, 6))

        exact = MnnFastEngine(config, weights)
        exact.store_story(story)
        skipping = MnnFastEngine(
            config, weights, engine_config=EngineConfig.mnnfast(threshold=0.001)
        )
        skipping.store_story(story)
        r_exact = exact.answer(questions)
        r_skip = skipping.answer(questions)
        # A tiny threshold keeps all meaningful mass: answers must agree.
        np.testing.assert_array_equal(r_skip.answer_ids, r_exact.answer_ids)

    def test_stats_accumulated(self, engine, rng):
        result = engine.answer(rng.integers(1, 50, size=(4, 6)))
        assert result.stats.flops > 0
        assert result.stats.exp_calls == 4 * 40


class TestAttention:
    def test_attention_rows_are_distributions(self, engine, rng):
        probs = engine.attention(rng.integers(1, 50, size=(3, 6)))
        assert probs.shape == (3, 40)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    @pytest.mark.parametrize("stable", (True, False))
    def test_attention_parity_across_algorithms(self, config, rng, stable):
        """The column/sharded attention() reconstruction shortcut must
        reproduce the baseline's explicit softmax under both softmax
        forms — first-hop probabilities are path-independent."""
        weights = EngineWeights.random(config, rng=np.random.default_rng(7))
        story = rng.integers(1, 50, size=(30, 6))
        questions = rng.integers(1, 50, size=(3, 6))

        probs = {}
        for name, ecfg in {
            "baseline": EngineConfig(algorithm="baseline", stable_softmax=stable),
            "column": EngineConfig(algorithm="column", stable_softmax=stable),
            "sharded-contig": EngineConfig(
                algorithm="sharded", num_shards=4, stable_softmax=stable
            ),
            "sharded-strided": EngineConfig(
                algorithm="sharded",
                num_shards=3,
                shard_policy="strided",
                stable_softmax=stable,
            ),
        }.items():
            eng = MnnFastEngine(config, weights, engine_config=ecfg)
            eng.store_story(story)
            probs[name] = eng.attention(questions)

        for name, p in probs.items():
            np.testing.assert_allclose(
                p,
                probs["baseline"],
                rtol=1e-10,
                atol=1e-12,
                err_msg=f"attention diverges on {name} (stable={stable})",
            )

    def test_attention_with_cache_is_identical(self, engine, rng):
        questions = rng.integers(1, 50, size=(3, 6))
        plain = engine.attention(questions)
        cached = engine.attention(questions, cache=FakeCache())
        np.testing.assert_array_equal(plain, cached)


class FakeCache:
    """Minimal VectorCache recording lookups."""

    def __init__(self):
        self.store = {}

    def lookup(self, word_id):
        return self.store.get(word_id)

    def insert(self, word_id, vector):
        self.store[word_id] = np.array(vector)


class TestEmbeddingCachePath:
    def test_cache_miss_then_hit(self, engine):
        cache = FakeCache()
        q = np.array([[3, 4, 3, PAD_ID, PAD_ID, PAD_ID]])
        _, hits, misses = engine.embed_question(q, cache)
        # Word 3 appears twice: first a miss, then a hit.
        assert misses == 2
        assert hits == 1

    def test_cached_embedding_is_exact(self, engine, rng):
        cache = FakeCache()
        q = rng.integers(1, 50, size=(2, 6))
        u_cold, _, _ = engine.embed_question(q, cache)
        u_warm, hits, misses = engine.embed_question(q, cache)
        assert misses == 0 and hits > 0
        np.testing.assert_allclose(u_warm, u_cold)
        u_plain, _, _ = engine.embed_question(q)
        np.testing.assert_allclose(u_warm, u_plain)

    def test_answer_reports_cache_stats(self, engine, rng):
        cache = FakeCache()
        q = rng.integers(1, 50, size=(2, 6))
        result = engine.answer(q, cache=cache)
        assert result.cache_misses > 0
        result2 = engine.answer(q, cache=cache)
        assert result2.cache_misses == 0


class TestEngineWeights:
    def test_pad_row_forced_to_zero(self, config, rng):
        w = EngineWeights.random(config, rng=rng)
        np.testing.assert_array_equal(w.embedding_a[PAD_ID], 0.0)
        np.testing.assert_array_equal(w.embedding_c[PAD_ID], 0.0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="share a shape"):
            EngineWeights(
                embedding_a=rng.normal(size=(10, 4)),
                embedding_c=rng.normal(size=(11, 4)),
                answer_weight=rng.normal(size=(10, 4)),
            )

    def test_answer_width_validated(self, rng):
        with pytest.raises(ValueError, match="answer weight"):
            EngineWeights(
                embedding_a=rng.normal(size=(10, 4)),
                embedding_c=rng.normal(size=(10, 4)),
                answer_weight=rng.normal(size=(10, 5)),
            )

    def test_engine_validates_weight_config_match(self, config, rng):
        other = MemNNConfig(embedding_dim=8, vocab_size=20, max_words=6)
        with pytest.raises(ValueError, match="vocabulary"):
            MnnFastEngine(config, EngineWeights.random(other, rng=rng))


class TestTierStats:
    """The unified ``tier_stats()`` accessor (ISSUE 6).  The historical
    per-tier attributes went through two PRs of ``DeprecationWarning``
    and are now removed (ISSUE 8) — reading them is an AttributeError,
    while the constructor keywords remain the engines' write surface."""

    def test_tier_stats_keys(self, engine, rng):
        result = engine.answer(rng.integers(1, 50, size=(2, 6)))
        tiers = result.tier_stats()
        assert set(tiers) == {"shards", "store", "index", "hops"}
        # Unsharded, resident, no top-k: shard lists empty, store and
        # index entries None, one entry per hop.
        assert tiers["shards"] == [[]]
        assert tiers["store"] == [None]
        assert tiers["index"] == [None]
        # Gate disabled by default: the hop record shows every
        # question running to full depth with no exits.
        assert tiers["hops"].num_exited == 0
        assert list(tiers["hops"].hops_run) == [1, 1]

    def test_tier_stats_does_not_warn(self, engine, rng):
        import warnings

        result = engine.answer(rng.integers(1, 50, size=(2, 6)))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result.tier_stats()

    def test_old_answer_attribute_is_gone(self, engine, rng):
        result = engine.answer(rng.integers(1, 50, size=(2, 6)))
        with pytest.raises(AttributeError):
            _ = result.hop_shard_stats

    def test_old_inference_attributes_are_gone(self, config, rng):
        from repro.core import ColumnMemNN

        m_in = rng.normal(size=(30, config.embedding_dim))
        m_out = rng.normal(size=(30, config.embedding_dim))
        result = ColumnMemNN(m_in, m_out).output(
            rng.normal(size=(2, config.embedding_dim))
        )
        with pytest.raises(AttributeError):
            _ = result.shard_stats
        with pytest.raises(AttributeError):
            _ = result.store_stats

    def test_constructor_keywords_feed_tier_stats(self):
        """The old field names survive as constructor keywords (the
        engines' write surface) and land in ``tier_stats()``."""
        from repro.core import InferenceResult, OpStats
        from repro.store.base import StoreStats

        shards = [OpStats(flops=1), OpStats(flops=2)]
        ledger = StoreStats(ram_bytes=64, chunks_served=1)
        result = InferenceResult(
            output=np.zeros((1, 4)),
            stats=OpStats(),
            shard_stats=shards,
            store_stats=ledger,
        )
        tiers = result.tier_stats()
        assert tiers["shards"] == shards
        assert tiers["store"] == ledger

    def test_sharded_results_populate_shards_tier(self, config, rng):
        eng = MnnFastEngine(
            config,
            EngineWeights.random(config, rng=rng),
            engine_config=EngineConfig.sharded(3),
        )
        eng.store_story(rng.integers(1, 50, size=(40, 6)))
        result = eng.answer(rng.integers(1, 50, size=(2, 6)))
        shards = result.tier_stats()["shards"]
        assert len(shards) == config.hops
        assert all(len(per_hop) == 3 for per_hop in shards)
