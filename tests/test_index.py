"""Unit tests for the IVF top-k retrieval tier (ISSUE 6).

Covers the index data structure (k-means build, membership partition,
probing), the :class:`~repro.core.config.TopKConfig` surface (knob
validation, sizing heuristics, batch-union candidate model) and the
:class:`~repro.index.TopKMemNN` dispatch — in particular the
exact-scan fallback, which must be *bit-exact* with the column kernel
(the approximate tier's quality metrics live in
``test_topk_recall.py``).
"""

import numpy as np
import pytest

from repro.core import ChunkConfig, ColumnMemNN, EngineConfig, TopKConfig
from repro.index import IVFIndex, TopKMemNN
from repro.store import MmapStore


def _memories(rng, ns=600, ed=16):
    return rng.normal(size=(ns, ed)), rng.normal(size=(ns, ed))


class TestTopKConfigValidation:
    def test_disabled_by_default(self):
        config = TopKConfig()
        assert not config.enabled
        assert not config.uses_index(10**6)

    def test_rejects_negative_nprobe(self):
        with pytest.raises(ValueError, match="nprobe"):
            TopKConfig(nprobe=-1)

    def test_rejects_non_integer_nprobe(self):
        with pytest.raises(ValueError, match="nprobe"):
            TopKConfig(nprobe=2.5)

    def test_rejects_bad_nlist(self):
        with pytest.raises(ValueError, match="nlist"):
            TopKConfig(nprobe=4, nlist=0)

    def test_rejects_bad_kmeans_iters(self):
        with pytest.raises(ValueError, match="kmeans_iters"):
            TopKConfig(nprobe=4, kmeans_iters=0)

    def test_rejects_negative_min_rows(self):
        with pytest.raises(ValueError, match="min_rows"):
            TopKConfig(nprobe=4, min_rows=-1)

    def test_effective_nlist_defaults_to_sqrt(self):
        assert TopKConfig(nprobe=4).effective_nlist(10_000) == 100
        assert TopKConfig(nprobe=4, nlist=32).effective_nlist(10_000) == 32
        # Never more clusters than rows.
        assert TopKConfig(nprobe=4, nlist=500).effective_nlist(10) == 10

    def test_uses_index_respects_min_rows(self):
        config = TopKConfig(nprobe=4, min_rows=100)
        assert not config.uses_index(100)
        assert config.uses_index(101)

    def test_expected_candidates_single_question(self):
        config = TopKConfig(nprobe=10, nlist=100, min_rows=0)
        assert config.expected_candidates(10_000) == 1_000
        # Fallback / disabled: every row is a candidate.
        assert TopKConfig().expected_candidates(10_000) == 10_000
        assert TopKConfig(nprobe=4, min_rows=10**6).expected_candidates(
            10_000
        ) == 10_000

    def test_expected_candidates_batch_union_grows(self):
        config = TopKConfig(nprobe=10, nlist=100, min_rows=0)
        single = config.expected_candidates(10_000, batch_size=1)
        batch = config.expected_candidates(10_000, batch_size=16)
        assert single < batch <= 10_000
        # 1 - (1 - 0.1)^16 of the rows, up to rounding.
        expected = 10_000 * (1.0 - 0.9**16)
        assert abs(batch - expected) <= 1
        with pytest.raises(ValueError, match="batch_size"):
            config.expected_candidates(10_000, batch_size=0)

    def test_probing_everything_is_a_full_scan(self):
        config = TopKConfig(nprobe=200, nlist=100, min_rows=0)
        assert config.expected_candidates(10_000) == 10_000


class TestIVFIndex:
    def test_members_partition_the_rows(self, rng):
        m_in, m_out = _memories(rng)
        store_rows = m_in.shape[0]
        index = IVFIndex.build(
            ColumnMemNN(m_in, m_out).store, nlist=16, seed=0
        )
        assert index.num_rows == store_rows
        assert index.nlist == 16
        all_members = np.concatenate(
            [index.cluster_members(c) for c in range(index.nlist)]
        )
        np.testing.assert_array_equal(
            np.sort(all_members), np.arange(store_rows)
        )
        assert sum(index.cluster_sizes) == store_rows

    def test_topical_workload_repeat_twice_identical(self):
        """Same seed, same workload — the generator draws nothing
        outside its own rng, so benches and sweeps are repeatable."""
        from repro.core import MemNNConfig
        from repro.index import synthetic_topical_workload

        config = MemNNConfig(
            embedding_dim=16, num_sentences=400, vocab_size=300, max_words=6
        )
        first = synthetic_topical_workload(
            config, 20, rng=np.random.default_rng(5)
        )
        second = synthetic_topical_workload(
            config, 20, rng=np.random.default_rng(5)
        )
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_build_is_deterministic(self, rng):
        m_in, m_out = _memories(rng)
        store = ColumnMemNN(m_in, m_out).store
        a = IVFIndex.build(store, nlist=8, seed=3)
        b = IVFIndex.build(store, nlist=8, seed=3)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.cluster_sizes, b.cluster_sizes)
        for cluster in range(a.nlist):
            np.testing.assert_array_equal(
                a.cluster_members(cluster), b.cluster_members(cluster)
            )

    def test_probe_returns_sorted_unique_members(self, rng):
        m_in, m_out = _memories(rng)
        index = IVFIndex.build(ColumnMemNN(m_in, m_out).store, nlist=16)
        u = rng.normal(size=(3, m_in.shape[1]))
        candidates, clusters = index.probe(u, nprobe=4)
        assert 1 <= len(clusters) <= 3 * 4  # union across the batch
        assert np.all(np.diff(candidates) > 0)  # sorted, unique
        expected = np.sort(np.concatenate(
            [index.cluster_members(c) for c in clusters]
        ))
        np.testing.assert_array_equal(candidates, expected)

    def test_probe_all_clusters_is_every_row(self, rng):
        m_in, m_out = _memories(rng)
        index = IVFIndex.build(ColumnMemNN(m_in, m_out).store, nlist=8)
        u = rng.normal(size=(2, m_in.shape[1]))
        candidates, _ = index.probe(u, nprobe=8)
        np.testing.assert_array_equal(candidates, np.arange(m_in.shape[0]))

    def test_probed_cluster_contains_its_centroid_row(self, rng):
        # A question aligned with a stored row must retrieve that row:
        # the row's cluster maximizes u.c among all clusters containing
        # it is not guaranteed in general, but probing enough clusters
        # (nprobe = nlist) always recovers it — spot-check mid nprobe.
        m_in, m_out = _memories(rng)
        index = IVFIndex.build(ColumnMemNN(m_in, m_out).store, nlist=8)
        row = 17
        candidates, _ = index.probe(m_in[row][None, :] * 2.0, nprobe=8)
        assert row in candidates


class TestTopKMemNNDispatch:
    def test_requires_enabled_config(self, rng):
        m_in, m_out = _memories(rng)
        with pytest.raises(ValueError, match="enabled"):
            TopKMemNN(m_in, m_out, config=TopKConfig())

    def test_fallback_is_bit_exact_with_column(self, rng):
        """Below min_rows the tier delegates to the exact kernel —
        identical bytes, not 1e-10-close."""
        m_in, m_out = _memories(rng, ns=300)
        u = rng.normal(size=(4, m_in.shape[1]))
        chunk = ChunkConfig(64)
        exact = ColumnMemNN(m_in, m_out, chunk=chunk).output(u)
        topk = TopKMemNN(
            m_in, m_out, config=TopKConfig(nprobe=4, min_rows=1000),
            chunk=chunk,
        ).output(u)
        np.testing.assert_array_equal(topk.output, exact.output)
        assert topk.index_stats is not None
        assert not topk.index_stats.used_index
        assert topk.index_stats.candidate_fraction == 1.0

    def test_indexed_pass_reports_stats(self, rng):
        m_in, m_out = _memories(rng)
        u = rng.normal(size=(2, m_in.shape[1]))
        solver = TopKMemNN(
            m_in, m_out,
            config=TopKConfig(nprobe=2, nlist=16, min_rows=0),
        )
        result = solver.output(u)
        stats = result.index_stats
        assert stats is not None and stats.used_index
        assert stats.nlist == 16 and stats.nprobe == 2
        assert 0.0 < stats.candidate_fraction < 1.0
        assert stats.candidate_rows < stats.num_rows == m_in.shape[0]
        # The index is built once and reused.
        first = solver.index
        solver.output(u)
        assert solver.index is first

    def test_candidate_rows_attention_matches_exact_subset(self, rng):
        """The tier's output equals the exact kernel run on exactly the
        candidate rows — the approximation is *which* rows, never *how*
        they are attended."""
        m_in, m_out = _memories(rng)
        u = rng.normal(size=(3, m_in.shape[1]))
        solver = TopKMemNN(
            m_in, m_out, config=TopKConfig(nprobe=3, nlist=16, min_rows=0)
        )
        result = solver.output(u)
        candidates, _ = solver.index.probe(u, nprobe=3)
        subset = ColumnMemNN(m_in[candidates], m_out[candidates]).output(u)
        np.testing.assert_allclose(
            result.output, subset.output, rtol=1e-10, atol=1e-10
        )

    def test_works_over_mmap_store(self, rng, tmp_path):
        m_in, m_out = _memories(rng)
        store = MmapStore.save(tmp_path / "memories", m_in, m_out)
        u = rng.normal(size=(2, m_in.shape[1]))
        resident = TopKMemNN(
            m_in, m_out, config=TopKConfig(nprobe=4, nlist=16, min_rows=0)
        ).output(u)
        mapped_solver = TopKMemNN(
            store=store,
            config=TopKConfig(nprobe=4, nlist=16, min_rows=0),
        )
        mapped = mapped_solver.output(u)
        np.testing.assert_allclose(
            mapped.output, resident.output, rtol=1e-10, atol=1e-10
        )
        assert mapped_solver.store_stats is not None


class TestEngineConfigTopK:
    def test_with_topk_enables_and_disables(self):
        config = EngineConfig().with_topk(nprobe=8)
        assert config.topk.enabled
        assert not config.with_topk(nprobe=0).topk.enabled

    def test_with_topk_preserves_omitted_knobs(self):
        config = EngineConfig().with_topk(nprobe=8, min_rows=0, nlist=32)
        again = config.with_topk(nprobe=4, measure_recall=True)
        assert again.topk.min_rows == 0
        assert again.topk.nlist == 32
        assert again.topk.nprobe == 4
        assert again.topk.measure_recall

    def test_baseline_with_topk_rejected_at_validate(self):
        config = EngineConfig.baseline().with_topk(nprobe=8)
        with pytest.raises(ValueError, match="baseline"):
            config.validate()
        # The column and sharded dataflows compose with the tier.
        EngineConfig(algorithm="column").with_topk(nprobe=8).validate()
        EngineConfig.sharded(2).with_topk(nprobe=8).validate()
