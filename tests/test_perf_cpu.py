"""CPU performance-model tests: the shapes of Figs. 3, 9 and 10."""

import pytest

from repro.core.config import CPU_CONFIG, ChunkConfig, MemNNConfig
from repro.core.stats import PHASES
from repro.perf.cpu import ALGORITHMS, CpuModel
from repro.perf.roofline import MachineRates, phase_time
from repro.core.stats import PhaseCost


@pytest.fixture
def cpu():
    return CpuModel()


class TestRoofline:
    def test_compute_bound_phase(self):
        rates = MachineRates(flops_per_second=1e9, dram_bandwidth=1e12)
        cost = PhaseCost(flops=1e9, dram_bytes=1.0)
        assert phase_time(cost, rates, overlap=False) == pytest.approx(1.0, rel=1e-3)

    def test_memory_bound_phase(self):
        rates = MachineRates(flops_per_second=1e15, dram_bandwidth=1e9)
        cost = PhaseCost(flops=1.0, dram_bytes=1e9)
        assert phase_time(cost, rates, overlap=False) == pytest.approx(1.0, rel=1e-3)

    def test_overlap_takes_max(self):
        rates = MachineRates(flops_per_second=1e9, dram_bandwidth=1e9)
        cost = PhaseCost(flops=1e9, dram_bytes=1e9)
        assert phase_time(cost, rates, overlap=True) == pytest.approx(1.0)
        assert phase_time(cost, rates, overlap=False) == pytest.approx(2.0)

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            MachineRates(flops_per_second=0, dram_bandwidth=1)


class TestCpuModel:
    def test_all_algorithms_run(self, cpu):
        for algorithm in ALGORITHMS:
            result = cpu.run(CPU_CONFIG, algorithm, threads=4)
            assert result.total_seconds > 0
            assert set(result.phase_seconds) == set(PHASES)

    def test_unknown_algorithm_rejected(self, cpu):
        with pytest.raises(ValueError, match="algorithm"):
            cpu.run(CPU_CONFIG, "magic", threads=1)

    def test_thread_bounds_validated(self, cpu):
        with pytest.raises(ValueError, match="threads"):
            cpu.run(CPU_CONFIG, "baseline", threads=0)
        with pytest.raises(ValueError, match="threads"):
            cpu.run(CPU_CONFIG, "baseline", threads=25)

    def test_variant_ordering_at_high_thread_count(self, cpu):
        """Fig. 9: baseline > column > column+streaming > MnnFast."""
        times = {
            a: cpu.run(CPU_CONFIG, a, threads=20).total_seconds for a in ALGORITHMS
        }
        assert (
            times["baseline"]
            > times["column"]
            > times["column_streaming"]
            > times["mnnfast"]
        )

    def test_mnnfast_speedup_matches_paper_band(self, cpu):
        """§5.2.1: 5.38x at 20 threads, 4.02x on average."""
        speedups = [
            cpu.speedup_vs_baseline(CPU_CONFIG, "mnnfast", t) for t in range(1, 21)
        ]
        assert 4.0 <= speedups[-1] <= 6.0
        average = sum(speedups) / len(speedups)
        assert 3.0 <= average <= 5.0

    def test_more_threads_never_slower(self, cpu):
        for algorithm in ALGORITHMS:
            times = [
                cpu.run(CPU_CONFIG, algorithm, threads=t).total_seconds
                for t in range(1, 25)
            ]
            assert all(a >= b - 1e-15 for a, b in zip(times, times[1:]))

    def test_column_zero_skip_reduces_weighted_sum_only(self, cpu):
        full = cpu.run(CPU_CONFIG, "column_streaming", threads=8).phase_seconds
        skip = cpu.run(CPU_CONFIG, "mnnfast", threads=8).phase_seconds
        assert skip["weighted_sum"] < full["weighted_sum"]
        assert skip["inner_product"] == pytest.approx(full["inner_product"])

    def test_chunk_granularity_limits_threads(self, cpu):
        """§4.1.1: one worker per chunk — a single-chunk database cannot
        use more than one thread in the column implementation."""
        tiny = MemNNConfig(embedding_dim=25, num_sentences=1000, num_questions=3)
        one = cpu.run(tiny, "column_streaming", threads=1).total_seconds
        twenty = cpu.run(tiny, "column_streaming", threads=20).total_seconds
        assert twenty == pytest.approx(one)
        # The baseline (BLAS row parallelism) is not limited this way.
        base_1 = cpu.run(tiny, "baseline", threads=1).total_seconds
        base_20 = cpu.run(tiny, "baseline", threads=20).total_seconds
        assert base_20 < base_1


class TestScalability:
    def test_fig3_fewer_channels_saturate_earlier(self):
        """Fig. 3: the baseline saturates earlier as channels shrink."""
        points = {
            ch: CpuModel().with_channels(ch).saturation_point(CPU_CONFIG, "baseline")
            for ch in (2, 4, 8)
        }
        assert points[2] <= points[4] <= points[8]
        assert points[2] < points[8]

    def test_fig10_column_saturates_later_than_baseline(self):
        cpu = CpuModel().with_channels(4)
        assert cpu.saturation_point(CPU_CONFIG, "column") > cpu.saturation_point(
            CPU_CONFIG, "baseline"
        )

    def test_fig10_streaming_close_to_ideal(self):
        """Fig. 10(b): streaming reaches near-ideal speedup at 8 channels."""
        cpu = CpuModel().with_channels(8)
        curve = cpu.speedup_curve(CPU_CONFIG, "column_streaming", max_threads=20)
        assert curve[20] >= 0.9 * 20

    def test_baseline_far_from_ideal(self):
        cpu = CpuModel().with_channels(2)
        curve = cpu.speedup_curve(CPU_CONFIG, "baseline", max_threads=20)
        assert curve[20] < 0.5 * 20

    def test_speedup_curve_starts_at_one(self, cpu):
        curve = cpu.speedup_curve(CPU_CONFIG, "baseline", max_threads=4)
        assert curve[1] == pytest.approx(1.0)

    def test_with_channels_does_not_mutate(self, cpu):
        other = cpu.with_channels(2)
        assert cpu.dram.channels == 4
        assert other.dram.channels == 2
