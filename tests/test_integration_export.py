"""Integration: train a MemN2N, export it, serve it with the engine.

The strongest cross-module invariant in the repository: the serving
engine (baseline or fully-optimized MnnFast dataflow) must produce the
same logits as the trained model it was exported from.
"""

import numpy as np
import pytest

from repro.core import EngineConfig, MnnFastEngine
from repro.data import build_vocabulary, generate_task, vectorize
from repro.model import (
    MemN2N,
    MemN2NConfig,
    Trainer,
    to_engine_config,
    to_engine_weights,
)

MAX_WORDS = 10


def make_trained_model(hops: int, rng_seed: int = 0):
    examples = generate_task(1, 150, seed=rng_seed)
    vocab = build_vocabulary(examples)
    stories, questions, answers = vectorize(examples, vocab, MAX_WORDS, 16)
    model = MemN2N(
        MemN2NConfig(
            vocab_size=len(vocab),
            embedding_dim=16,
            hops=hops,
            max_sentences=16,
            max_words=MAX_WORDS,
            use_temporal_encoding=False,
        ),
        rng=np.random.default_rng(rng_seed),
    )
    Trainer(model, rng=np.random.default_rng(rng_seed + 1)).fit(
        stories, questions, answers, epochs=8
    )
    return model, vocab, examples


def engine_for(model, example, engine_config=None):
    return MnnFastEngine(
        to_engine_config(model, num_sentences=example.num_sentences),
        to_engine_weights(model),
        engine_config=engine_config,
        use_position_encoding=model.config.use_position_encoding,
    )


@pytest.mark.parametrize("hops", [1, 2, 3])
def test_engine_matches_model_logits(hops):
    model, vocab, examples = make_trained_model(hops)
    example = examples[0]
    story_ids = np.stack(
        [vocab.encode(s, width=MAX_WORDS) for s in example.story]
    )
    question_ids = vocab.encode(example.question, width=MAX_WORDS)[None, :]

    # Model-side forward (no padding slots: trim to the story length).
    model_logits = model.forward(story_ids[None, :, :], question_ids).logits

    engine = engine_for(model, example)
    engine.store_story(story_ids)
    result = engine.answer(question_ids)

    np.testing.assert_allclose(result.logits, model_logits, rtol=1e-9)


@pytest.mark.parametrize("hops", [1, 2])
def test_mnnfast_dataflow_matches_model(hops):
    """The optimized dataflow (column + streaming + tiny threshold)
    must still predict what the trained model predicts."""
    model, vocab, examples = make_trained_model(hops)
    agreements = 0
    for example in examples[:20]:
        story_ids = np.stack(
            [vocab.encode(s, width=MAX_WORDS) for s in example.story]
        )
        question_ids = vocab.encode(example.question, width=MAX_WORDS)[None, :]
        model_answer = model.predict(story_ids[None, :, :], question_ids)[0]

        engine = engine_for(
            model, example,
            engine_config=EngineConfig.mnnfast(chunk_size=4, threshold=1e-6),
        )
        engine.store_story(story_ids)
        engine_answer = engine.answer(question_ids).answer_ids[0]
        agreements += int(engine_answer == model_answer)
    assert agreements == 20


def test_adjacent_weights_reject_wrong_hop_count():
    model, _, _ = make_trained_model(hops=2)
    weights = to_engine_weights(model)
    from repro.core import MemNNConfig as EngineCfg

    with pytest.raises(ValueError, match="hops"):
        MnnFastEngine(
            EngineCfg(
                embedding_dim=16,
                num_sentences=16,
                vocab_size=model.config.vocab_size,
                max_words=MAX_WORDS,
                hops=3,  # mismatch: weights serve exactly 2
            ),
            weights,
        )


def test_temporal_encoding_blocks_export():
    model = MemN2N(
        MemN2NConfig(vocab_size=10, embedding_dim=4, hops=1,
                     max_sentences=4, max_words=3,
                     use_temporal_encoding=True)
    )
    with pytest.raises(ValueError, match="temporal"):
        to_engine_weights(model)


def test_export_config_round_trip():
    model, _, _ = make_trained_model(hops=1)
    config = to_engine_config(model, num_sentences=42)
    assert config.num_sentences == 42
    assert config.embedding_dim == model.config.embedding_dim
    assert config.hops == 1
    with pytest.raises(ValueError):
        to_engine_config(model, num_sentences=0)
