"""Baseline vs column-based algorithm: equivalence and behaviour.

The central correctness claim of §3.1 is that the column-based
algorithm with lazy softmax "generates the same results as the
baseline"; these tests verify that claim across chunk sizes, numerical
modes, and sharded (scale-out) execution.
"""

import numpy as np
import pytest

from repro.core import (
    BaselineMemNN,
    ChunkConfig,
    ColumnMemNN,
    PartialOutput,
    ZeroSkipConfig,
    merge_partials,
    partition_memory,
    softmax,
)


class TestBaseline:
    def test_output_matches_equation_3(self, small_memories, questions):
        m_in, m_out = small_memories
        result = BaselineMemNN(m_in, m_out).output(questions)
        expected = softmax(questions @ m_in.T) @ m_out
        np.testing.assert_allclose(result.output, expected)

    def test_probabilities_returned_on_request(self, small_memories, questions):
        m_in, m_out = small_memories
        engine = BaselineMemNN(m_in, m_out)
        assert engine.output(questions).probabilities is None
        probs = engine.output(questions, return_probabilities=True).probabilities
        assert probs is not None and probs.shape == (5, 64)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_single_question_vector_promoted(self, small_memories, rng):
        m_in, m_out = small_memories
        u = rng.normal(size=8)
        result = BaselineMemNN(m_in, m_out).output(u)
        assert result.output.shape == (1, 8)

    def test_rejects_mismatched_memories(self, rng):
        with pytest.raises(ValueError, match="differ"):
            BaselineMemNN(rng.normal(size=(4, 3)), rng.normal(size=(5, 3)))

    def test_rejects_wrong_question_width(self, small_memories, rng):
        m_in, m_out = small_memories
        with pytest.raises(ValueError, match="questions"):
            BaselineMemNN(m_in, m_out).output(rng.normal(size=(2, 9)))

    def test_division_count_scales_with_ns(self, small_memories, questions):
        # §3.1: baseline divisions are proportional to ns.
        m_in, m_out = small_memories
        stats = BaselineMemNN(m_in, m_out).output(questions).stats
        assert stats.divisions == 5 * 64


class TestColumnEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 3, 16, 64, 100])
    def test_matches_baseline_any_chunking(self, small_memories, questions, chunk_size):
        m_in, m_out = small_memories
        baseline = BaselineMemNN(m_in, m_out).output(questions).output
        column = ColumnMemNN(
            m_in, m_out, chunk=ChunkConfig(chunk_size=chunk_size)
        ).output(questions).output
        np.testing.assert_allclose(column, baseline, rtol=1e-10)

    def test_paper_faithful_mode_matches_in_safe_range(
        self, small_memories, questions
    ):
        m_in, m_out = small_memories
        baseline = BaselineMemNN(m_in, m_out).output(questions, stable=False)
        column = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=7)).output(
            questions, stable=False
        )
        np.testing.assert_allclose(column.output, baseline.output, rtol=1e-10)

    def test_stable_mode_survives_huge_scores(self, rng):
        # The paper-faithful Eq. (4) overflows here; the online-softmax
        # variant must not (DESIGN.md ablation: lazy-softmax stability).
        m_in = rng.normal(size=(32, 4)) * 200.0
        m_out = rng.normal(size=(32, 4))
        u = rng.normal(size=(2, 4)) * 10.0
        stable = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=8)).output(
            u, stable=True
        )
        assert np.all(np.isfinite(stable.output))
        expected = softmax(u @ m_in.T) @ m_out
        np.testing.assert_allclose(stable.output, expected, rtol=1e-8)

    def test_unstable_mode_overflows_on_huge_scores(self, rng):
        m_in = rng.normal(size=(32, 4)) * 200.0
        m_out = rng.normal(size=(32, 4))
        u = rng.normal(size=(2, 4)) * 10.0
        with np.errstate(over="ignore", invalid="ignore"):
            unstable = ColumnMemNN(m_in, m_out).output(u, stable=False)
        assert not np.all(np.isfinite(unstable.output))

    def test_division_count_scales_with_ed_not_ns(self, small_memories, questions):
        # §3.1: column divisions are proportional to ed, not ns.
        m_in, m_out = small_memories
        stats = ColumnMemNN(m_in, m_out).output(questions).stats
        assert stats.divisions == 5 * 8

    def test_intermediate_footprint_is_chunk_sized(self, small_memories, questions):
        m_in, m_out = small_memories
        small = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=4))
        big = BaselineMemNN(m_in, m_out)
        col_stats = small.output(questions).stats
        base_stats = big.output(questions).stats
        assert col_stats.intermediate_bytes == 2 * 5 * 4 * 4
        assert base_stats.intermediate_bytes == 3 * 5 * 64 * 4
        assert col_stats.intermediate_bytes < base_stats.intermediate_bytes

    def test_chunk_larger_than_memory_is_fine(self, small_memories, questions):
        m_in, m_out = small_memories
        result = ColumnMemNN(
            m_in, m_out, chunk=ChunkConfig(chunk_size=10_000)
        ).output(questions)
        expected = softmax(questions @ m_in.T) @ m_out
        np.testing.assert_allclose(result.output, expected)


class TestPartialOutput:
    def test_merge_of_shards_equals_whole(self, small_memories, questions):
        m_in, m_out = small_memories
        whole = ColumnMemNN(m_in, m_out).output(questions).output
        shards = list(partition_memory(m_in, m_out, parts=4))
        partials = [s.partial_output(questions)[0] for s in shards]
        merged = merge_partials(partials)
        np.testing.assert_allclose(merged.finalize(), whole, rtol=1e-10)

    def test_merge_is_commutative(self, small_memories, questions):
        m_in, m_out = small_memories
        shards = list(partition_memory(m_in, m_out, parts=2))
        a = shards[0].partial_output(questions)[0]
        b = shards[1].partial_output(questions)[0]
        np.testing.assert_allclose(
            a.merge(b).finalize(), b.merge(a).finalize(), rtol=1e-12
        )

    def test_merge_with_identity(self, small_memories, questions):
        m_in, m_out = small_memories
        partial, _ = ColumnMemNN(m_in, m_out).partial_output(questions)
        identity = PartialOutput.empty(5, 8)
        np.testing.assert_allclose(
            identity.merge(partial).finalize(), partial.finalize()
        )

    def test_finalize_empty_raises(self):
        with pytest.raises(ValueError, match="denominator"):
            PartialOutput.empty(2, 3).finalize()

    def test_merge_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shapes"):
            PartialOutput.empty(2, 3).merge(PartialOutput.empty(2, 4))

    def test_partition_covers_all_sentences(self, small_memories):
        m_in, m_out = small_memories
        shards = list(partition_memory(m_in, m_out, parts=3))
        assert sum(s.num_sentences for s in shards) == 64

    def test_partition_rejects_too_many_parts(self, small_memories):
        m_in, m_out = small_memories
        with pytest.raises(ValueError, match="split"):
            list(partition_memory(m_in, m_out, parts=65))

    def test_merge_partials_requires_input(self):
        with pytest.raises(ValueError):
            merge_partials([])


class TestColumnZeroSkip:
    def test_exp_mode_matches_baseline_exp_mode(self, small_memories, questions):
        # The raw-exp comparison (§4.2) is chunking-independent, so the
        # two engines must skip the exact same rows.
        m_in, m_out = small_memories
        cfg = ZeroSkipConfig(threshold=0.2, mode="exp")
        base = BaselineMemNN(m_in, m_out).output(questions, zero_skip=cfg)
        col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=5)).output(
            questions, zero_skip=cfg
        )
        assert base.stats.rows_skipped == col.stats.rows_skipped
        np.testing.assert_allclose(col.output, base.output, rtol=1e-10)

    def test_running_probability_mode_is_conservative(
        self, small_memories, questions
    ):
        # The single-pass running denominator can only under-skip
        # relative to the exact probability rule.
        m_in, m_out = small_memories
        cfg = ZeroSkipConfig(threshold=0.05, mode="probability")
        base = BaselineMemNN(m_in, m_out).output(questions, zero_skip=cfg)
        col = ColumnMemNN(m_in, m_out, chunk=ChunkConfig(chunk_size=8)).output(
            questions, zero_skip=cfg
        )
        assert col.stats.rows_skipped <= base.stats.rows_skipped

    def test_zero_threshold_is_identity(self, small_memories, questions):
        m_in, m_out = small_memories
        engine = ColumnMemNN(m_in, m_out)
        plain = engine.output(questions).output
        skipped = engine.output(questions, zero_skip=ZeroSkipConfig(0.0)).output
        np.testing.assert_allclose(plain, skipped)

    def test_skipping_reduces_rows_computed(self, small_memories, questions):
        m_in, m_out = small_memories
        engine = ColumnMemNN(m_in, m_out)
        full = engine.output(questions).stats
        skipped = engine.output(
            questions, zero_skip=ZeroSkipConfig(0.05, mode="probability")
        ).stats
        assert skipped.rows_computed < full.rows_computed
        assert skipped.rows_computed + skipped.rows_skipped == full.rows_computed
