"""Tests for the serving robustness layer: deadlines, retries, load
shedding, graceful degradation, and the request-lifecycle trace."""

import pytest

from repro.core import EngineConfig, MemNNConfig
from repro.serving import (
    AdmissionConfig,
    DegradationConfig,
    DegradationPolicy,
    QaServer,
    QuestionRequest,
    RetryConfig,
    ServerConfig,
    StoryRequest,
    Workload,
    skip_ratio_for_threshold,
    stage_group,
)
from repro.serving.trace import RequestTrace, Span


def _network(hops: int = 1) -> MemNNConfig:
    return MemNNConfig(
        embedding_dim=48, num_sentences=20_000, num_questions=1,
        vocab_size=30_000, hops=hops,
    )


def _server(**kwargs) -> QaServer:
    kwargs.setdefault("network", _network())
    kwargs.setdefault("engine", EngineConfig.mnnfast())
    return QaServer(ServerConfig(**kwargs))


class TestPolicies:
    def test_skip_ratio_anchor_and_monotonicity(self):
        assert skip_ratio_for_threshold(0.1) == pytest.approx(0.97)
        assert skip_ratio_for_threshold(0.0) == 0.0
        thresholds = (0.001, 0.01, 0.1, 0.3, 0.5)
        ratios = [skip_ratio_for_threshold(t) for t in thresholds]
        assert ratios == sorted(ratios)
        assert all(0.0 <= r <= 0.99 for r in ratios)

    def test_retry_backoff_grows(self):
        retry = RetryConfig(max_retries=3, backoff_base=1e-3, backoff_factor=2.0)
        assert retry.backoff(1) == pytest.approx(1e-3)
        assert retry.backoff(2) == pytest.approx(2e-3)
        assert retry.backoff(3) == pytest.approx(4e-3)
        with pytest.raises(ValueError):
            retry.backoff(0)

    def test_degradation_hysteresis(self):
        policy = DegradationPolicy(
            DegradationConfig(
                enabled=True, high_watermark=4, low_watermark=1, max_level=2,
                threshold_factor=2.0, hop_step=1, min_hops=1,
            ),
            EngineConfig.mnnfast(threshold=0.1),
            hops=3,
        )
        assert policy.effective() == (0.1, 3)
        policy.observe(10)
        assert policy.level == 1
        assert policy.effective() == (pytest.approx(0.2), 2)
        policy.observe(10)
        assert policy.level == 2
        assert policy.effective() == (pytest.approx(0.4), 1)
        policy.observe(10)  # clamped at max_level
        assert policy.level == 2
        policy.observe(2)  # between watermarks: hold
        assert policy.level == 2
        policy.observe(0)
        policy.observe(0)
        assert policy.level == 0
        assert policy.peak_level == 2
        assert policy.transitions == 4

    def test_degradation_threshold_capped(self):
        policy = DegradationPolicy(
            DegradationConfig(
                enabled=True, high_watermark=2, low_watermark=0, max_level=5,
                threshold_factor=10.0, max_threshold=0.5,
            ),
            EngineConfig.mnnfast(threshold=0.1),
            hops=1,
        )
        for _ in range(5):
            policy.observe(99)
        threshold, hops = policy.effective()
        assert threshold == 0.5
        assert hops == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError):
            RetryConfig(max_retries=-1)
        with pytest.raises(ValueError):
            RetryConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            DegradationConfig(high_watermark=1, low_watermark=1)
        with pytest.raises(ValueError):
            DegradationConfig(max_threshold=1.5)
        with pytest.raises(ValueError):
            ServerConfig(deadline=0.0)


class TestDeadlines:
    def test_queued_request_times_out(self):
        server = _server(workers=1)
        blocker = StoryRequest(arrival=0.0, sentences=100, words_per_sentence=7)
        # Per-request deadline: the question gives up after 40us queued;
        # the story inherits the server-wide None (no deadline).
        question = QuestionRequest(arrival=1e-6, words=6, deadline=40e-6)
        assert server.story_service_seconds(blocker) > 45e-6  # outlives the wait
        metrics = QaServer(server.config).run(
            Workload(requests=[blocker, question])
        )
        # The question timed out while queued; only the story was admitted.
        assert metrics.arrivals == 2
        assert metrics.admitted == 1
        assert metrics.timed_out == 1
        assert metrics.completed == 1
        question_trace = next(t for t in metrics.traces if t.kind == "question")
        assert question_trace.outcome == "timeout"
        (queue_span,) = question_trace.spans
        assert queue_span.stage == "queue"
        assert queue_span.duration == pytest.approx(40e-6)

    def test_in_service_timeout_releases_the_worker(self):
        server = _server(workers=1, deadline=70e-6)
        big_story = StoryRequest(arrival=0.0, sentences=150, words_per_sentence=7)
        assert server.story_service_seconds(big_story) > 75e-6
        late_question = QuestionRequest(arrival=300e-6, words=6)
        assert server.question_service_seconds(
            QuestionRequest(arrival=0.0, words=6)
        ) < 70e-6
        metrics = QaServer(server.config).run(
            Workload(requests=[big_story, late_question])
        )
        # The story was cancelled mid-service at its deadline; the freed
        # worker then served the late question to completion.
        story_trace, question_trace = metrics.traces
        assert story_trace.outcome == "timeout"
        assert question_trace.outcome == "completed"
        assert metrics.admitted == 2
        assert metrics.timed_out == 1
        assert metrics.completed == 1
        # The cancelled story's only span is its (deadline-truncated) queue
        # span; its service never produced an embed span.
        assert all(s.stage == "queue" for s in story_trace.spans)

    def test_no_deadline_serves_everything(self):
        server = _server(workers=1)
        requests = [QuestionRequest(arrival=i * 1e-6, words=6) for i in range(20)]
        metrics = QaServer(server.config).run(Workload(requests=requests))
        assert metrics.completed == 20
        assert metrics.timed_out == 0
        assert metrics.shed == 0


class TestSheddingAndRetries:
    def _burst(self):
        return [
            StoryRequest(arrival=0.0, sentences=100, words_per_sentence=7),
            QuestionRequest(arrival=1e-6, words=6),
            QuestionRequest(arrival=2e-6, words=6),
        ]

    def test_shed_under_overload(self):
        config = ServerConfig(
            network=_network(), engine=EngineConfig.mnnfast(), workers=1,
            admission=AdmissionConfig(max_queue=1),
        )
        metrics = QaServer(config).run(Workload(requests=self._burst()))
        # Story in service, first question queued (depth 1), second shed.
        assert metrics.shed == 1
        assert metrics.completed == 2
        assert metrics.shed_rate == pytest.approx(1 / 3)
        shed_trace = metrics.traces[2]
        assert shed_trace.outcome == "shed"
        assert shed_trace.spans == []  # never enqueued, never served

    def test_retry_then_succeed(self):
        config = ServerConfig(
            network=_network(), engine=EngineConfig.mnnfast(), workers=1,
            admission=AdmissionConfig(max_queue=1),
            retry=RetryConfig(max_retries=3, backoff_base=200e-6),
        )
        metrics = QaServer(config).run(Workload(requests=self._burst()))
        # The would-be-shed question backs off, retries, and completes.
        assert metrics.shed == 0
        assert metrics.completed == 3
        assert metrics.retries >= 1
        retried = metrics.traces[2]
        assert retried.outcome == "completed"
        assert retried.attempts == 2
        assert retried.spans[0].stage == "backoff"
        assert retried.spans[0].duration == pytest.approx(200e-6)

    def test_retry_budget_exhausted_is_shed(self):
        config = ServerConfig(
            network=_network(), engine=EngineConfig.mnnfast(), workers=1,
            admission=AdmissionConfig(max_queue=1),
            retry=RetryConfig(max_retries=2, backoff_base=1e-6),
        )
        # Backoff so short the queue is still full on every retry.
        metrics = QaServer(config).run(Workload(requests=self._burst()))
        assert metrics.shed == 1
        shed_trace = metrics.traces[2]
        assert shed_trace.outcome == "shed"
        assert shed_trace.attempts == 3  # 1 + 2 retries
        assert metrics.retries == 2


class TestDegradation:
    def _workload(self):
        burst = [QuestionRequest(arrival=i * 1e-6, words=6) for i in range(40)]
        tail = [
            QuestionRequest(arrival=10e-3 + i * 5e-3, words=6) for i in range(4)
        ]
        return Workload(requests=burst + tail)

    def _config(self, enabled: bool) -> ServerConfig:
        return ServerConfig(
            network=_network(hops=3), engine=EngineConfig.mnnfast(), workers=2,
            degradation=DegradationConfig(
                enabled=enabled, high_watermark=8, low_watermark=1,
                max_level=2, hop_step=1, min_hops=1,
            ),
        )

    def test_policy_kicks_in_and_recovers(self):
        metrics = QaServer(self._config(True)).run(self._workload())
        assert metrics.completed == 44
        assert metrics.degradation_peak_level == 2
        assert metrics.degradation_final_level == 0  # recovered on the tail
        degraded = [t for t in metrics.traces if t.degradation_level > 0]
        assert degraded
        # Degraded requests ran fewer hops than the configured 3.
        deepest = next(t for t in metrics.traces if t.degradation_level == 2)
        assert sum(1 for s in deepest.spans if s.stage.startswith("hop")) == 1

    def test_degradation_cuts_burst_latency(self):
        slow = QaServer(self._config(False)).run(self._workload())
        fast = QaServer(self._config(True)).run(self._workload())
        assert fast.latency_percentile(99) < slow.latency_percentile(99)
        assert fast.mean_latency() < slow.mean_latency()

    def test_full_fidelity_without_pressure(self):
        # An underloaded server never degrades.
        requests = [QuestionRequest(arrival=i * 1e-3, words=6) for i in range(10)]
        metrics = QaServer(self._config(True)).run(Workload(requests=requests))
        assert metrics.degradation_peak_level == 0
        assert all(t.degradation_level == 0 for t in metrics.traces)
        for trace in metrics.traces:
            hops = sum(1 for s in trace.spans if s.stage.startswith("hop"))
            assert hops == 3


class TestTraceInvariants:
    def test_spans_well_ordered_and_counts_reconcile(self):
        config = ServerConfig(
            network=_network(hops=2), engine=EngineConfig.mnnfast(), workers=2,
            deadline=500e-6,
            admission=AdmissionConfig(max_queue=4),
            retry=RetryConfig(max_retries=1, backoff_base=100e-6),
            degradation=DegradationConfig(
                enabled=True, high_watermark=3, low_watermark=1, max_level=1,
            ),
        )
        requests = [QuestionRequest(arrival=i * 20e-6, words=6) for i in range(60)]
        requests += [
            StoryRequest(arrival=i * 100e-6, sentences=20, words_per_sentence=7)
            for i in range(10)
        ]
        requests.sort(key=lambda r: r.arrival)
        metrics = QaServer(config).run(Workload(requests=requests))

        # run() already reconciles; re-assert the invariants explicitly.
        metrics.reconcile()
        assert metrics.arrivals == 70
        assert metrics.arrivals == metrics.completed + metrics.shed + metrics.timed_out
        assert len(metrics.samples) == metrics.completed
        for trace in metrics.traces:
            trace.validate()

        # Completed questions decompose into queue + embed + hop spans.
        for trace in metrics.traces:
            if trace.outcome == "completed" and trace.kind == "question":
                stages = [s.stage for s in trace.spans]
                assert "queue" in stages
                assert "embed" in stages
                assert any(s.startswith("hop") for s in stages)

        breakdown = metrics.stage_breakdown("question")
        assert set(breakdown) == {"queueing", "embed", "inference", "backoff"}
        assert breakdown["inference"] > 0
        assert breakdown["embed"] > 0

        summary = metrics.summary()
        assert summary["arrivals"] == 70.0
        assert summary["shed_rate"] == pytest.approx(metrics.shed / 70)
        assert summary["question_p99_latency"] >= summary["question_p50_latency"]

    def test_trace_validation_catches_disorder(self):
        trace = RequestTrace(0, "question", arrival=1.0, outcome="completed")
        trace.spans.append(Span("queue", 1.0, 2.0))
        trace.spans.append(Span("embed", 1.5, 3.0))  # overlaps the queue span
        with pytest.raises(ValueError):
            trace.validate()

    def test_trace_rejects_unknown_stage_and_backwards_span(self):
        with pytest.raises(ValueError):
            Span("warp", 0.0, 1.0)
        with pytest.raises(ValueError):
            Span("embed", 2.0, 1.0)
        with pytest.raises(ValueError):
            stage_group("nonsense")

    def test_double_finish_rejected(self):
        trace = RequestTrace(0, "question", arrival=0.0)
        trace.finish("completed")
        with pytest.raises(RuntimeError):
            trace.finish("shed")
