"""Tests for the cluster serving subsystem (ISSUE 8).

Covers the planner/executor split (plans describe exactly what
execution does), prefetcher LRU introspection, the three routing
policies (including the differential affinity-beats-round-robin
claim), autoscaler hysteresis properties, and the event-driven fleet
simulator's ledger reconciliation in both placement modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    CacheAffinityPolicy,
    ClusterConfig,
    ClusterSim,
    LeastBacklogPolicy,
    Replica,
    RoundRobinPolicy,
    Router,
    burst_trace,
    diurnal_trace,
    requests_from_trace,
    skewed_workload,
    topic_chunks,
)
from repro.core import InferencePlan, expected_hop_survivors, plan_inference
from repro.core.config import EngineConfig, MemNNConfig
from repro.core.engine import MnnFastEngine
from repro.serving import QaServer, ServerConfig
from repro.store import ChunkPrefetcher, ResidentStore

CHUNK_BYTES = 2 * 500 * 32 * 8


def small_config(replicas: int = 2, **overrides) -> ClusterConfig:
    defaults = dict(
        num_rows=8_000,
        embedding_dim=32,
        chunk_size=500,
        replicas=replicas,
        resident_bytes=4 * CHUNK_BYTES,
        disk_bandwidth=2e8,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# --- the planner ---------------------------------------------------------------


class TestInferencePlan:
    def test_full_coverage_by_default(self):
        plan = plan_inference(num_rows=2_500, embedding_dim=16, chunk_size=1_000)
        assert plan.chunks == (0, 1, 2)
        assert plan.total_chunks == 3
        assert plan.chunk_rows_total == 2_500

    def test_survivor_schedule_matches_pure_model(self):
        plan = plan_inference(
            num_rows=100, embedding_dim=8, batch_size=64,
            hops=4, min_hops=1, exit_rate=0.5,
        )
        assert list(plan.survivors) == expected_hop_survivors(64, 4, 1, 0.5)
        assert plan.expected_hops < 4
        assert plan.executed_hops <= 4

    def test_gate_disabled_is_full_depth(self):
        survivors = expected_hop_survivors(32, 3, exit_rate=0.0)
        assert survivors == [32, 32, 32]

    def test_bytes_streamed_counts_both_memories(self):
        plan = plan_inference(
            num_rows=1_000, embedding_dim=10, chunk_size=500, hops=2
        )
        # 1000 rows x 10 wide x 4 bytes x 2 matrices x 2 hops
        assert plan.bytes_streamed == 1_000 * 10 * 4 * 2 * 2

    def test_chunk_subset_narrows_traffic(self):
        full = plan_inference(num_rows=4_000, embedding_dim=8, chunk_size=500)
        narrow = plan_inference(
            num_rows=4_000, embedding_dim=8, chunk_size=500, chunks=(0, 3)
        )
        assert narrow.num_chunks == 2
        assert narrow.hop_bytes == full.hop_bytes * 2 // 8

    def test_validation(self):
        with pytest.raises(ValueError, match="chunk indices"):
            plan_inference(
                num_rows=1_000, embedding_dim=8, chunk_size=500, chunks=(5,)
            )
        with pytest.raises(ValueError, match="at least one chunk"):
            plan_inference(
                num_rows=1_000, embedding_dim=8, chunk_size=500, chunks=()
            )
        with pytest.raises(ValueError, match="exit_rate"):
            expected_hop_survivors(8, 2, exit_rate=1.5)
        with pytest.raises(ValueError, match="batch_size"):
            expected_hop_survivors(0, 2)

    def test_engine_plan_describes_engine_state(self):
        config = MemNNConfig(
            embedding_dim=16, num_sentences=100, num_questions=1,
            vocab_size=50, max_words=6, hops=2,
        )
        engine = MnnFastEngine(config)
        rng = np.random.default_rng(0)
        engine.store_story(rng.integers(1, 50, size=(40, 6)))
        plan = engine.plan(batch_size=4)
        assert plan.num_rows == 40
        assert plan.hops == 2
        assert plan.batch_size == 4
        assert plan.num_chunks == plan.total_chunks

    def test_server_plan_agrees_with_server_survivors(self):
        server = QaServer(ServerConfig(
            network=MemNNConfig(
                embedding_dim=32, num_sentences=10_000, num_questions=1,
                vocab_size=5_000, hops=4,
            ),
            engine=EngineConfig().with_early_exit(0.2),
        ))
        plan = server.plan(batch_size=16)
        assert list(plan.survivors) == server.expected_hop_survivors(16)
        assert plan.num_rows == 10_000


# --- prefetcher introspection --------------------------------------------------


class TestPrefetcherIntrospection:
    def _store(self, rows=2_000, ed=8):
        rng = np.random.default_rng(1)
        return ResidentStore(
            rng.standard_normal((rows, ed)), rng.standard_normal((rows, ed))
        )

    def test_fetch_reports_lru_hits(self):
        store = self._store()
        pair_bytes = 2 * 500 * 8 * 8
        fetcher = ChunkPrefetcher(store, 500, resident_bytes=2 * pair_bytes)
        _, hit = fetcher.fetch((0, 500))
        assert not hit
        _, hit = fetcher.fetch((0, 500))
        assert hit

    def test_resident_spans_track_lru(self):
        store = self._store()
        pair_bytes = 2 * 500 * 8 * 8
        fetcher = ChunkPrefetcher(store, 500, resident_bytes=2 * pair_bytes)
        fetcher.fetch((0, 500))
        fetcher.fetch((500, 1000))
        assert fetcher.resident_spans() == ((0, 500), (500, 1000))
        assert fetcher.resident_chunk_ids() == {0, 1}
        # A third chunk evicts the coldest.
        fetcher.fetch((1000, 1500))
        assert fetcher.resident_chunk_ids() == {1, 2}

    def test_fetch_accounts_in_ledger(self):
        store = self._store()
        fetcher = ChunkPrefetcher(store, 500, resident_bytes=10 * CHUNK_BYTES)
        fetcher.fetch((0, 500))
        assert fetcher.stats.chunks_served == 1
        assert fetcher.stats.demand_fetches == 1

    def test_no_lru_means_no_hits(self):
        fetcher = ChunkPrefetcher(self._store(), 500, resident_bytes=None)
        _, hit = fetcher.fetch((0, 500))
        _, hit2 = fetcher.fetch((0, 500))
        assert not hit and not hit2
        assert fetcher.resident_spans() == ()


# --- replicas ------------------------------------------------------------------


def _replica(replica_id=0, rows=8_000, chunk_base=0, budget=4 * CHUNK_BYTES):
    rng = np.random.default_rng(replica_id)
    store = ResidentStore(
        rng.standard_normal((rows, 32)), rng.standard_normal((rows, 32))
    )
    server = QaServer(ServerConfig(
        network=MemNNConfig(
            embedding_dim=32, num_sentences=rows, num_questions=1,
            vocab_size=1_000,
        ),
        workers=1,
        disk_bandwidth=2e8,
    ))
    return Replica(
        replica_id=replica_id, server=server, store=store,
        chunk_size=500, resident_bytes=budget, chunk_base=chunk_base,
    )


class TestReplica:
    def test_execute_streams_planned_chunks(self):
        replica = _replica()
        plan = plan_inference(
            num_rows=8_000, embedding_dim=32, chunk_size=500, chunks=(0, 1, 2)
        )
        executed = replica.execute(plan)
        assert executed.touched_chunks == 3
        assert executed.lru_misses == 3
        # The prefetcher ledger saw exactly the planned chunks.
        assert replica.prefetcher.stats.chunks_served == 3
        assert replica.resident_chunks() == {0, 1, 2}

    def test_second_pass_hits_the_lru(self):
        replica = _replica()
        plan = plan_inference(
            num_rows=8_000, embedding_dim=32, chunk_size=500, chunks=(0, 1)
        )
        cold = replica.execute(plan)
        warm = replica.execute(plan)
        assert cold.lru_misses == 2 and cold.lru_hits == 0
        assert warm.lru_hits == 2 and warm.lru_misses == 0
        assert warm.seconds < cold.seconds  # misses charge disk streaming

    def test_shard_replica_touches_only_owned_chunks(self):
        # A shard owning chunks [4, 8) of the global space.
        replica = _replica(rows=2_000, chunk_base=4)
        plan = plan_inference(
            num_rows=8_000, embedding_dim=32, chunk_size=500,
            chunks=(0, 1, 4, 5),
        )
        assert replica.owned_chunks(plan) == [4, 5]
        executed = replica.execute(plan)
        assert executed.touched_chunks == 2
        assert replica.resident_chunks() == {4, 5}

    def test_affinity_is_overlap_fraction(self):
        replica = _replica()
        plan = plan_inference(
            num_rows=8_000, embedding_dim=32, chunk_size=500,
            chunks=(0, 1, 2, 3),
        )
        assert replica.affinity(plan) == 0.0
        replica.execute(plan_inference(
            num_rows=8_000, embedding_dim=32, chunk_size=500, chunks=(0, 1)
        ))
        assert replica.affinity(plan) == pytest.approx(0.5)


# --- routing policies ----------------------------------------------------------


class TestRouterPolicies:
    def _fleet(self, n=3):
        return [_replica(replica_id=i) for i in range(n)]

    def _plan(self, chunks=(0, 1)):
        return plan_inference(
            num_rows=8_000, embedding_dim=32, chunk_size=500, chunks=chunks
        )

    def test_round_robin_cycles(self):
        fleet = self._fleet()
        policy = RoundRobinPolicy()
        picks = [policy.choose(self._plan(), fleet).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_backlog_joins_shortest_queue(self):
        fleet = self._fleet()
        fleet[0].backlog = 3
        fleet[1].backlog = 1
        fleet[2].backlog = 2
        assert LeastBacklogPolicy().choose(self._plan(), fleet).replica_id == 1

    def test_affinity_prefers_warm_replica(self):
        fleet = self._fleet()
        fleet[1].execute(self._plan((0, 1)))
        chosen = CacheAffinityPolicy().choose(self._plan((0, 1)), fleet)
        assert chosen.replica_id == 1

    def test_affinity_backlog_discount_spills(self):
        fleet = self._fleet()
        fleet[1].execute(self._plan((0, 1)))
        # Overlap 1.0 at weight 0.1 loses once 11 requests are queued.
        fleet[1].backlog = 11
        chosen = CacheAffinityPolicy(backlog_weight=0.1).choose(
            self._plan((0, 1)), fleet
        )
        assert chosen.replica_id != 1

    def test_cold_ties_spread_over_fleet(self):
        """Rendezvous tie-break: distinct cold chunk sets must not all
        stack on one replica."""
        fleet = self._fleet(4)
        policy = CacheAffinityPolicy()
        picks = {
            policy.choose(self._plan((c, c + 1)), fleet).replica_id
            for c in range(0, 14, 2)
        }
        assert len(picks) > 1

    def test_router_skips_draining(self):
        fleet = self._fleet()
        fleet[0].draining = True
        router = Router("round_robin")
        assert router.route(self._plan(), fleet).replica_id != 0

    def test_router_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Router("fastest_first")

    def test_router_requires_routable_replica(self):
        fleet = self._fleet(1)
        fleet[0].draining = True
        with pytest.raises(RuntimeError, match="no routable"):
            Router("round_robin").route(self._plan(), fleet)


class TestAffinityBeatsRoundRobin:
    """The ISSUE 8 differential claim, at test scale."""

    def _run(self, policy):
        config = small_config(replicas=4)
        requests = skewed_workload(
            num_requests=300, num_topics=4, chunks_per_topic=4,
            total_chunks=config.total_chunks, rate=150.0, seed=5,
        )
        return ClusterSim(config, policy=policy).run(requests)

    def test_hit_rate_and_p50(self):
        affinity = self._run("cache_affinity")
        rr = self._run("round_robin")
        assert affinity.chunk_hit_rate > rr.chunk_hit_rate
        assert affinity.latency_percentile(50) <= rr.latency_percentile(50)


# --- autoscaler ----------------------------------------------------------------


class TestAutoscalerConfig:
    def test_watermark_order_enforced(self):
        with pytest.raises(ValueError, match="low < high"):
            AutoscalerConfig(high_watermark=1.0, low_watermark=2.0)

    def test_replica_bounds_enforced(self):
        with pytest.raises(ValueError, match="max_replicas"):
            AutoscalerConfig(min_replicas=4, max_replicas=2)


class TestAutoscaler:
    def _scaler(self, **overrides):
        defaults = dict(
            min_replicas=1, max_replicas=8,
            high_watermark=4.0, low_watermark=1.0,
            scale_up_cooldown=2.0, scale_down_cooldown=10.0,
        )
        defaults.update(overrides)
        return Autoscaler(AutoscalerConfig(**defaults))

    def _replay(self, scaler, backlog_per_replica, duration=60.0, tick=1.0):
        replicas = scaler.config.min_replicas
        t = 0.0
        while t <= duration:
            replicas = scaler.observe(
                t, int(round(backlog_per_replica * replicas)), replicas
            )
            t += tick
        return replicas

    def test_sustained_overload_scales_to_ceiling(self):
        scaler = self._scaler()
        assert self._replay(scaler, backlog_per_replica=10) == 8

    def test_idle_fleet_stays_at_floor(self):
        scaler = self._scaler()
        assert self._replay(scaler, backlog_per_replica=0) == 1

    def test_hysteresis_band_holds(self):
        """Signals inside (low, high) never change the fleet."""
        scaler = self._scaler()
        assert self._replay(scaler, backlog_per_replica=2.0) == 1
        assert not scaler.decisions

    @settings(max_examples=30, deadline=None)
    @given(
        lighter=st.floats(min_value=0.0, max_value=20.0),
        heavier=st.floats(min_value=0.0, max_value=20.0),
    )
    def test_replicas_monotone_in_sustained_load(self, lighter, heavier):
        if lighter > heavier:
            lighter, heavier = heavier, lighter
        light_fleet = self._replay(self._scaler(), lighter)
        heavy_fleet = self._replay(self._scaler(), heavier)
        assert light_fleet <= heavy_fleet

    @settings(max_examples=30, deadline=None)
    @given(
        backlogs=st.lists(
            st.integers(min_value=0, max_value=100), min_size=5, max_size=60
        ),
        up=st.floats(min_value=0.5, max_value=5.0),
        down=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_no_flapping_within_cooldown(self, backlogs, up, down):
        """Any two actions are separated by the cooldown of the
        *second* action's direction."""
        scaler = self._scaler(scale_up_cooldown=up, scale_down_cooldown=down)
        replicas = 1
        for step, backlog in enumerate(backlogs):
            replicas = scaler.observe(float(step), backlog, replicas)
        for earlier, later in zip(scaler.decisions, scaler.decisions[1:]):
            gap = later.time - earlier.time
            needed = up if later.direction > 0 else down
            assert gap >= needed

    def test_decision_trace_records_signal(self):
        scaler = self._scaler()
        scaler.observe(0.0, 100, 1)
        assert len(scaler.decisions) == 1
        decision = scaler.decisions[0]
        assert decision.replicas_after == 2
        assert decision.backlog_per_replica == 100.0
        assert decision.direction == 1


# --- the simulator -------------------------------------------------------------


class TestClusterSim:
    def test_ledgers_reconcile(self):
        config = small_config(replicas=3)
        requests = skewed_workload(
            num_requests=120, num_topics=4, chunks_per_topic=4,
            total_chunks=config.total_chunks, rate=200.0, seed=3,
        )
        metrics = ClusterSim(config, policy="cache_affinity").run(requests)
        metrics.reconcile()  # idempotent; run() already checked
        assert metrics.arrivals == 120
        assert metrics.completed + metrics.shed + metrics.timed_out == 120
        assert metrics.simulated_seconds > 0

    def test_deterministic_replay(self):
        config = small_config(replicas=2)
        requests = skewed_workload(
            num_requests=60, num_topics=4, chunks_per_topic=4,
            total_chunks=config.total_chunks, rate=100.0, seed=9,
        )
        first = ClusterSim(config, policy="cache_affinity").run(requests)
        second = ClusterSim(config, policy="cache_affinity").run(requests)
        assert first.summary() == second.summary()

    def test_deadline_produces_timeouts_under_overload(self):
        config = small_config(replicas=1, max_queue=1_000)
        requests = skewed_workload(
            num_requests=200, num_topics=4, chunks_per_topic=4,
            total_chunks=config.total_chunks, rate=5_000.0,
            deadline=0.02, seed=13,
        )
        metrics = ClusterSim(config, policy="round_robin").run(requests)
        assert metrics.timed_out > 0
        metrics.reconcile()

    def test_bounded_queue_sheds(self):
        config = small_config(replicas=1, max_queue=2)
        requests = skewed_workload(
            num_requests=100, num_topics=2, chunks_per_topic=4,
            total_chunks=small_config().total_chunks, rate=100_000.0, seed=17,
        )
        metrics = ClusterSim(config, policy="round_robin").run(requests)
        assert metrics.shed > 0
        metrics.reconcile()

    def test_sharded_mode_adds_reduce_latency(self):
        """§5.3: the sharded fan-out completes at the slowest shard
        plus a nonzero tree-reduce of the nq x ed partials."""
        sharded_config = small_config(
            replicas=4, mode="sharded", resident_bytes=None
        )
        requests = skewed_workload(
            num_requests=30, num_topics=2,
            chunks_per_topic=sharded_config.total_chunks,
            total_chunks=sharded_config.total_chunks, rate=50.0, seed=21,
        )
        sim = ClusterSim(sharded_config, policy="round_robin")
        reduce_cost = sim.cluster_model.reduce_seconds(
            MemNNConfig(
                embedding_dim=32, num_sentences=8_000, num_questions=1,
                vocab_size=1_000,
            ),
            4,
        )
        assert reduce_cost > 0
        metrics = sim.run(requests)
        metrics.reconcile()
        assert metrics.completed == 30
        # Every completion carries at least the reduce cost on top of
        # service.
        fastest = min(s.service for s in metrics._samples())
        assert fastest >= reduce_cost

    def test_sharded_mode_rejects_autoscaler(self):
        with pytest.raises(ValueError, match="sharded"):
            ClusterSim(
                small_config(mode="sharded"),
                autoscaler=Autoscaler(AutoscalerConfig()),
            )

    def test_autoscaled_burst_beats_static(self):
        config = small_config(replicas=2)
        trace = burst_trace(
            duration=21.0, base_rate=20.0, burst_rate=600.0,
            burst_start=7.0, burst_duration=7.0,
        )
        requests = requests_from_trace(
            trace, num_topics=4, chunks_per_topic=8,
            total_chunks=config.total_chunks, deadline=0.1, seed=29,
        )
        static = ClusterSim(config, policy="least_backlog").run(requests)
        autoscaler = Autoscaler(AutoscalerConfig(
            min_replicas=2, max_replicas=10,
            high_watermark=3.0, low_watermark=0.5,
            scale_up_cooldown=1.0, scale_down_cooldown=8.0,
        ))
        scaled = ClusterSim(
            config, policy="least_backlog",
            autoscaler=autoscaler, tick_interval=0.5,
        ).run(requests)
        assert scaled.timed_out < static.timed_out
        assert scaled.decisions
        assert scaled.mean_replicas() > 2.0

    def test_replica_trace_steps_on_scaling(self):
        config = small_config(replicas=1)
        trace = burst_trace(
            duration=10.0, base_rate=10.0, burst_rate=400.0,
            burst_start=2.0, burst_duration=6.0,
        )
        requests = requests_from_trace(
            trace, num_topics=2, chunks_per_topic=4,
            total_chunks=config.total_chunks, seed=31,
        )
        autoscaler = Autoscaler(AutoscalerConfig(
            min_replicas=1, max_replicas=6,
            high_watermark=2.0, low_watermark=0.5,
            scale_up_cooldown=0.5, scale_down_cooldown=4.0,
        ))
        metrics = ClusterSim(
            config, policy="least_backlog",
            autoscaler=autoscaler, tick_interval=0.5,
        ).run(requests)
        counts = [n for _, n in metrics.replica_trace]
        assert max(counts) > 1
        assert metrics.decisions


# --- workload generators -------------------------------------------------------


class TestWorkloads:
    def test_topic_chunks_disjoint_until_wrap(self):
        a = set(topic_chunks(0, 8, 8, 64))
        b = set(topic_chunks(1, 8, 8, 64))
        assert not a & b

    def test_skew_concentrates_on_head_topics(self):
        requests = skewed_workload(
            num_requests=1_000, num_topics=8, chunks_per_topic=4,
            total_chunks=64, rate=100.0, zipf_s=1.5, seed=1,
        )
        top = sum(1 for r in requests if r.topic == 0)
        tail = sum(1 for r in requests if r.topic == 7)
        assert top > 3 * max(1, tail)

    def test_arrivals_sorted_and_positive(self):
        requests = skewed_workload(
            num_requests=50, num_topics=4, chunks_per_topic=4,
            total_chunks=16, rate=10.0, seed=2,
        )
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_burst_trace_shape(self):
        trace = burst_trace(
            duration=30.0, base_rate=10.0, burst_rate=100.0,
            burst_start=10.0, burst_duration=5.0,
        )
        assert [s.rate for s in trace] == [10.0, 100.0, 10.0]
        assert sum(s.duration for s in trace) == pytest.approx(30.0)

    def test_diurnal_trace_peaks_mid_period(self):
        trace = diurnal_trace(duration=24.0, base_rate=10.0, peak_rate=100.0)
        rates = [s.rate for s in trace]
        assert max(rates) == rates[len(rates) // 2]
        assert min(rates) >= 10.0

    def test_trace_replay_rate_tracks_segments(self):
        trace = burst_trace(
            duration=20.0, base_rate=5.0, burst_rate=200.0,
            burst_start=5.0, burst_duration=5.0,
        )
        requests = requests_from_trace(
            trace, num_topics=4, chunks_per_topic=4, total_chunks=16, seed=3
        )
        in_burst = sum(1 for r in requests if 5.0 <= r.arrival < 10.0)
        outside = len(requests) - in_burst
        assert in_burst > outside
