"""Trace-generator tests: the dataflow-level claims of §3.1 in traffic form."""

import pytest

from repro.core.config import ChunkConfig, MemNNConfig
from repro.memsim import (
    Access,
    DramModel,
    MemoryHierarchy,
    MemoryLayout,
    Prefetch,
    SetAssociativeCache,
    baseline_inference_trace,
    column_inference_trace,
    embedding_trace,
    interleave,
)


@pytest.fixture
def cfg():
    # Small enough to simulate quickly, big enough that the baseline's
    # intermediates (3 x ns x nq x 4 = 384 KB) overflow the test LLC.
    return MemNNConfig(
        embedding_dim=16, num_sentences=4000, num_questions=8, vocab_size=2000
    )


@pytest.fixture
def layout(cfg):
    return MemoryLayout(cfg, chunk_size=250)


def run(trace, llc_kb=256):
    hierarchy = MemoryHierarchy(
        SetAssociativeCache(size_bytes=llc_kb * 1024, line_bytes=64, associativity=8),
        DramModel(),
    )
    hierarchy.run_trace(trace)
    return hierarchy


class TestLayout:
    def test_regions_do_not_overlap(self, layout):
        cfg = layout.config
        assert layout.m_out_base >= layout.m_in_base + cfg.memory_bytes
        assert layout.intermediate_base >= layout.m_out_base + cfg.memory_bytes
        assert layout.chunk_buffer_base >= layout.intermediate(2)
        assert layout.embedding_base >= layout.chunk_buffer(1)
        assert layout.output_base >= layout.embedding_base

    def test_row_addressing(self, layout):
        assert layout.m_in_row(1) - layout.m_in_row(0) == layout.row_bytes

    def test_invalid_intermediate_index(self, layout):
        with pytest.raises(ValueError):
            layout.intermediate(3)
        with pytest.raises(ValueError):
            layout.chunk_buffer(2)


class TestBaselineTrace:
    def test_reads_both_memories_fully(self, cfg, layout):
        reads = [
            a for a in baseline_inference_trace(layout)
            if isinstance(a, Access) and not a.write
        ]
        m_in_bytes = sum(
            a.size for a in reads
            if layout.m_in_base <= a.address < layout.m_out_base
        )
        assert m_in_bytes == cfg.memory_bytes

    def test_intermediate_traffic_proportional_to_ns(self, cfg, layout):
        inter_lo = layout.intermediate_base
        inter_hi = layout.chunk_buffer_base
        traffic = sum(
            a.size for a in baseline_inference_trace(layout)
            if inter_lo <= a.address < inter_hi
        )
        # T_IN write+read, P_exp write+read, P write+read = 6 passes.
        assert traffic == 6 * cfg.intermediate_bytes

    def test_intermediates_spill_when_llc_small(self, cfg, layout):
        h = run(baseline_inference_trace(layout), llc_kb=64)
        summary = h.stream("inference")
        # Far more off-chip traffic than the two memory matrices alone.
        assert summary.dram_bytes > 2 * cfg.memory_bytes


class TestColumnTrace:
    def test_no_full_intermediate_traffic(self, cfg, layout):
        inter_lo = layout.intermediate_base
        inter_hi = layout.chunk_buffer_base
        for item in column_inference_trace(layout, ChunkConfig(250, streaming=False)):
            if isinstance(item, Access):
                assert not inter_lo <= item.address < inter_hi

    def test_chunk_buffers_hit_after_warmup(self, cfg, layout):
        h = run(column_inference_trace(layout, ChunkConfig(250, streaming=False)))
        summary = h.stream("inference")
        # The reused chunk buffers make the bulk of accesses hits; the
        # misses are dominated by the compulsory M_IN/M_OUT streams.
        compulsory_lines = 2 * cfg.memory_bytes // 64
        assert summary.demand_misses <= compulsory_lines * 1.2

    def test_streaming_eliminates_demand_misses(self, cfg, layout):
        plain = run(column_inference_trace(layout, ChunkConfig(250, streaming=False)))
        streamed = run(column_inference_trace(layout, ChunkConfig(250, streaming=True)))
        assert (
            streamed.stream("inference").demand_misses
            < 0.2 * plain.stream("inference").demand_misses
        )

    def test_streaming_emits_prefetches(self, cfg, layout):
        items = list(column_inference_trace(layout, ChunkConfig(250, streaming=True)))
        assert any(isinstance(i, Prefetch) for i in items)

    def test_offchip_ordering_matches_fig11(self, cfg, layout):
        """Fig. 11: baseline > column > column+streaming.

        The LLC must dwarf the chunk working set (as the paper's 30 MB
        LLC dwarfs its 384 KB chunks) while the baseline's full
        intermediates (384 KB here) still overflow it.
        """
        base = run(baseline_inference_trace(layout), llc_kb=128)
        col = run(
            column_inference_trace(layout, ChunkConfig(250, streaming=False)),
            llc_kb=128,
        )
        stream = run(
            column_inference_trace(layout, ChunkConfig(250, streaming=True)),
            llc_kb=128,
        )
        base_n = base.stream("inference").offchip_accesses
        col_n = col.stream("inference").offchip_accesses
        stream_n = stream.stream("inference").offchip_accesses
        assert base_n > col_n > stream_n
        # Paper: streaming removes >60% of the baseline's off-chip accesses.
        assert stream_n < 0.4 * base_n


class TestEmbeddingTrace:
    def test_one_access_per_word(self, layout):
        trace = list(embedding_trace(layout, [1, 2, 3]))
        assert len(trace) == 3
        assert all(a.stream == "embedding" for a in trace)

    def test_bypass_flag_propagates(self, layout):
        trace = list(embedding_trace(layout, [1], bypass=True))
        assert trace[0].bypass

    def test_addresses_fall_in_embedding_region(self, cfg, layout):
        for access in embedding_trace(layout, range(100)):
            assert layout.embedding_base <= access.address < layout.output_base


class TestInterleave:
    def test_round_robin(self):
        a = [Access(0, 1)] * 4
        b = [Access(64, 1)] * 4
        merged = list(interleave(a, b, granularity=2))
        assert len(merged) == 8
        assert merged[0].address == 0
        assert merged[2].address == 64

    def test_uneven_lengths_drain(self):
        a = [Access(0, 1)] * 5
        b = [Access(64, 1)] * 1
        assert len(list(interleave(a, b, granularity=2))) == 6

    def test_granularity_validated(self):
        with pytest.raises(ValueError):
            list(interleave([], granularity=0))
