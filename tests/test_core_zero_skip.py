"""Unit tests for the zero-skipping masks (§3.2)."""

import numpy as np
import pytest

from repro.core.numerics import softmax
from repro.core.zero_skip import (
    exp_mode_mask,
    probability_mode_mask,
    reduction_ratio,
    running_probability_mode_mask,
)


class TestExpModeMask:
    def test_keeps_scores_above_log_threshold(self):
        scores = np.array([[-3.0, 0.0, 2.0]])
        mask = exp_mode_mask(scores, threshold=0.5)  # log(0.5) ~ -0.69
        np.testing.assert_array_equal(mask, [[False, True, True]])

    def test_zero_threshold_keeps_all(self, rng):
        scores = rng.normal(size=(3, 10))
        assert exp_mode_mask(scores, 0.0).all()

    def test_no_overflow_for_huge_scores(self):
        # e^{5000} is not representable; the log-space compare is exact.
        mask = exp_mode_mask(np.array([5000.0, -5000.0]), threshold=0.1)
        np.testing.assert_array_equal(mask, [True, False])

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            exp_mode_mask(np.zeros(3), 1.5)


class TestProbabilityModeMask:
    def test_matches_direct_softmax_threshold(self, rng):
        scores = rng.normal(size=(4, 20))
        p = softmax(scores)
        mask = probability_mode_mask(scores, threshold=0.1)
        np.testing.assert_array_equal(mask, p >= 0.1)

    def test_uniform_scores_all_kept_below_uniform_threshold(self):
        scores = np.zeros((1, 10))  # p_i = 0.1 each
        assert probability_mode_mask(scores, threshold=0.05).all()

    def test_peaked_distribution_keeps_only_peak(self):
        scores = np.array([[10.0] + [0.0] * 9])
        mask = probability_mode_mask(scores, threshold=0.1)
        assert mask[0, 0]
        assert not mask[0, 1:].any()


class TestRunningProbabilityMask:
    def test_equals_exact_mask_when_sum_is_final(self, rng):
        scores = rng.normal(size=(2, 12))
        log_sum = np.log(np.exp(scores).sum(axis=1))
        running = running_probability_mode_mask(scores, log_sum, 0.1)
        exact = probability_mode_mask(scores, 0.1)
        np.testing.assert_array_equal(running, exact)

    def test_smaller_denominator_keeps_more(self, rng):
        scores = rng.normal(size=(1, 12))
        full = np.log(np.exp(scores).sum(axis=1))
        partial = full - 1.0  # running sum < final sum
        kept_partial = running_probability_mode_mask(scores, partial, 0.1).sum()
        kept_full = running_probability_mode_mask(scores, full, 0.1).sum()
        assert kept_partial >= kept_full


class TestReductionRatio:
    def test_all_kept_is_zero(self):
        assert reduction_ratio(np.ones(10, dtype=bool)) == 0.0

    def test_all_skipped_is_one(self):
        assert reduction_ratio(np.zeros(10, dtype=bool)) == 1.0

    def test_half(self):
        mask = np.array([True, False, True, False])
        assert reduction_ratio(mask) == pytest.approx(0.5)

    def test_empty_mask(self):
        assert reduction_ratio(np.zeros((0,), dtype=bool)) == 0.0
