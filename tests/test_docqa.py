"""The document-QA workload subsystem: corpus determinism, qrels
completeness, metric arithmetic, and the traffic adapters.

The subsystem's value rests on two invariants that make its scores
trustworthy:

* **Determinism** — the same seed reproduces the corpus, queries, and
  ledger byte for byte, so benchmark gates compare like with like
  across runs.
* **Ledger completeness** — every synthesized query has at least one
  supporting-span row (relevance 2) that exists in the store, so no
  metric mean is computed over an unjudgeable query.

Metric tests use hand-built :class:`RetrievalRun` records with known
answers; the engine-facing tests pin the evaluator's refusal to score
a top-k run that did not record its candidate rows.
"""

import dataclasses

import numpy as np
import pytest

from repro.batching import BatchConfig, form_batches
from repro.cluster import row_span_chunks
from repro.core import EngineConfig, MnnFastEngine
from repro.data import tokenize
from repro.docqa import (
    DocqaRequest,
    QrelsLedger,
    RetrievalRun,
    default_docqa_configs,
    docqa_network,
    docqa_weights,
    docqa_workload,
    evaluate_retriever_runs,
    generate_queries,
    ingest_documents,
    run_retriever,
    sweep_docqa_configs,
    synthetic_corpus,
    to_cluster_requests,
    to_serving_workload,
)
from repro.docqa.queries import RELEVANCE_SAME_DOC, RELEVANCE_SUPPORTING


def _small_corpus(seed=0):
    return synthetic_corpus(
        num_docs=4, rows_per_doc=8, max_words=6, background_vocab=100, seed=seed
    )


# --- ingestion ----------------------------------------------------------------


class TestIngestion:
    def test_tokenize_strips_punctuation_and_lowercases(self):
        assert tokenize("Hello, World! (again)") == ["hello", "world", "again"]
        assert tokenize("  ") == []

    def test_raw_text_documents_chunk_with_provenance(self):
        corpus = ingest_documents(
            ["The cat sat on the mat.", "Dogs bark loudly."], max_words=3
        )
        assert corpus.num_docs == 2
        # Doc 0 has 6 tokens -> 2 rows; doc 1 has 3 tokens -> 1 row.
        assert corpus.doc_row_ranges == ((0, 2), (2, 3))
        assert corpus.provenance[0].span == (0, 3)
        assert corpus.provenance[1].span == (3, 6)
        assert corpus.provenance[2] .doc_id == 1
        assert corpus.doc_of_row(1) == 0
        assert list(corpus.rows_of_doc(1)) == [2]
        decoded = corpus.vocabulary.decode(corpus.rows[0])
        assert decoded == ["the", "cat", "sat"]

    def test_final_row_is_padded(self):
        corpus = ingest_documents([["a", "b", "c", "d", "e"]], max_words=3)
        assert corpus.rows.shape == (2, 3)
        assert corpus.rows[1, 2] == 0  # pad ID
        assert corpus.provenance[1].span == (3, 5)

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError, match="no tokens"):
            ingest_documents(["words here", "..."], max_words=4)

    def test_vocabulary_is_frozen(self):
        corpus = ingest_documents(["some words"], max_words=4)
        with pytest.raises(KeyError):
            corpus.vocabulary.encode(["unseen"], width=4)


# --- determinism --------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_reproduces_corpus_bytes(self):
        a = _small_corpus(seed=3)
        b = _small_corpus(seed=3)
        np.testing.assert_array_equal(a.rows, b.rows)
        assert a.provenance == b.provenance
        assert a.doc_row_ranges == b.doc_row_ranges

    def test_different_seed_changes_background(self):
        a = _small_corpus(seed=3)
        b = _small_corpus(seed=4)
        assert not np.array_equal(a.rows, b.rows)

    def test_same_seed_reproduces_queries_and_qrels(self):
        corpus = _small_corpus()
        queries_a, qrels_a = generate_queries(corpus, num_queries=12, seed=5)
        queries_b, qrels_b = generate_queries(corpus, num_queries=12, seed=5)
        for qa, qb in zip(queries_a, queries_b):
            assert qa.query_id == qb.query_id
            assert qa.doc_id == qb.doc_id
            assert qa.supporting_rows == qb.supporting_rows
            np.testing.assert_array_equal(qa.words, qb.words)
        assert qrels_a.judgments == qrels_b.judgments

    def test_same_seed_reproduces_workload_arrivals(self):
        corpus = _small_corpus()
        queries, _ = generate_queries(corpus, num_queries=12, seed=5)
        a = docqa_workload(queries, session_rate=50.0, seed=9)
        b = docqa_workload(queries, session_rate=50.0, seed=9)
        assert [r.arrival for r in a] == [r.arrival for r in b]
        assert [r.query.query_id for r in a] == [r.query.query_id for r in b]


# --- qrels ledger -------------------------------------------------------------


class TestQrels:
    def test_every_query_has_a_supporting_row_in_store(self):
        corpus = _small_corpus()
        queries, qrels = generate_queries(corpus, num_queries=20, seed=1)
        assert len(qrels) == 20
        for query in queries:
            supporting = qrels.relevant_rows(
                query.query_id, min_relevance=RELEVANCE_SUPPORTING
            )
            assert len(supporting) >= 1
            for row in supporting:
                assert 0 <= row < corpus.num_rows
                assert corpus.doc_of_row(row) == query.doc_id
            assert supporting == query.supporting_rows

    def test_same_doc_rows_judged_at_grade_one(self):
        corpus = _small_corpus()
        queries, qrels = generate_queries(corpus, num_queries=4, seed=1)
        query = queries[0]
        judged = qrels.judgments[query.query_id]
        assert set(judged) == set(corpus.rows_of_doc(query.doc_id))
        grades = set(judged.values())
        assert grades == {RELEVANCE_SUPPORTING, RELEVANCE_SAME_DOC}

    def test_round_robin_covers_every_document(self):
        corpus = _small_corpus()
        queries, _ = generate_queries(corpus, num_queries=corpus.num_docs, seed=0)
        assert sorted(q.doc_id for q in queries) == list(range(corpus.num_docs))

    def test_unjudged_query_is_a_key_error(self):
        ledger = QrelsLedger(judgments={0: {1: 2}})
        with pytest.raises(KeyError):
            ledger.relevant_rows(99)

    def test_empty_or_nonpositive_judgments_rejected(self):
        with pytest.raises(ValueError, match="empty judgment"):
            QrelsLedger(judgments={0: {}})
        with pytest.raises(ValueError, match="relevance"):
            QrelsLedger(judgments={0: {1: 0}})


# --- metric arithmetic --------------------------------------------------------


def _run(query_id, ranking, scores, hops_run=2, num_rows=10, used_index=False):
    return RetrievalRun(
        query_id=query_id,
        ranking=tuple(ranking),
        scores=tuple(scores),
        hops_run=hops_run,
        num_rows=num_rows,
        used_index=used_index,
    )


class TestMetrics:
    def test_known_ranking_scores(self):
        # Query 0: relevant row 3 ranked first.  Query 1: relevant row 7
        # ranked third (inside k=2?  no — outside top-2).
        qrels = QrelsLedger(judgments={0: {3: 2}, 1: {7: 2}})
        runs = [
            _run(0, [3, 1, 2], [0.7, 0.2, 0.1]),
            _run(1, [4, 5, 7], [0.5, 0.3, 0.2]),
        ]
        ev = evaluate_retriever_runs(runs, qrels, k=2)
        assert ev.recall_at_k == pytest.approx(0.5)  # (1 + 0) / 2
        assert ev.mrr == pytest.approx((1.0 + 1.0 / 3.0) / 2.0)
        assert ev.span_hit_rate == pytest.approx(0.5)
        assert ev.mean_attention_mass == pytest.approx((0.7 + 0.2) / 2.0)
        assert ev.mean_hops == pytest.approx(2.0)
        assert ev.mean_candidate_fraction == pytest.approx(0.3)

    def test_min_relevance_widens_to_document_grade(self):
        qrels = QrelsLedger(judgments={0: {3: 2, 4: 1}})
        runs = [_run(0, [4, 1], [0.6, 0.4])]
        strict = evaluate_retriever_runs(runs, qrels, k=1, min_relevance=2)
        loose = evaluate_retriever_runs(runs, qrels, k=1, min_relevance=1)
        assert strict.span_hit_rate == 0.0
        assert loose.span_hit_rate == 1.0

    def test_missing_grade_is_an_error(self):
        qrels = QrelsLedger(judgments={0: {3: 1}})
        with pytest.raises(ValueError, match="relevance"):
            evaluate_retriever_runs(
                [_run(0, [3], [1.0])], qrels, k=1, min_relevance=2
            )

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError, match="no retrieval runs"):
            evaluate_retriever_runs([], QrelsLedger(judgments={0: {1: 2}}))


# --- engine-facing evaluation -------------------------------------------------


class TestRetrieverSweep:
    def test_sweep_scores_every_query_per_config(self):
        corpus = _small_corpus()
        queries, qrels = generate_queries(corpus, num_queries=8, seed=2)
        evaluations = sweep_docqa_configs(
            corpus,
            queries,
            qrels,
            default_docqa_configs(nprobe=2, chunk_size=16),
            k=4,
        )
        assert set(evaluations) == {"exact", "topk", "early_exit"}
        for ev in evaluations.values():
            assert ev.num_queries == len(queries)
        # With the damped-output surrogate weights the exact ranking
        # recovers the planted supporting span.
        assert evaluations["exact"].recall_at_k == pytest.approx(1.0)
        assert all(not run.used_index for run in evaluations["exact"].runs)
        assert any(run.used_index for run in evaluations["topk"].runs)

    def test_topk_without_recorded_candidates_is_an_error(self):
        corpus = _small_corpus()
        queries, _ = generate_queries(corpus, num_queries=2, seed=2)
        network = docqa_network(corpus)
        engine = MnnFastEngine(
            network,
            weights=docqa_weights(network),
            engine_config=EngineConfig.mnnfast(chunk_size=16).with_topk(
                nprobe=2, min_rows=0
            ),
        )
        try:
            engine.store_story(corpus.rows)
            with pytest.raises(ValueError, match="record_candidates"):
                run_retriever(engine, queries)
        finally:
            engine.close()

    def test_network_corpus_mismatch_rejected(self):
        corpus = _small_corpus()
        queries, qrels = generate_queries(corpus, num_queries=2, seed=2)
        wrong = dataclasses.replace(docqa_network(corpus), num_sentences=99)
        with pytest.raises(ValueError, match="corpus"):
            sweep_docqa_configs(corpus, queries, qrels, network=wrong)


# --- traffic shapes and adapters ----------------------------------------------


class TestWorkloadAdapters:
    def _stream(self):
        corpus = _small_corpus()
        queries, _ = generate_queries(corpus, num_queries=16, seed=2)
        requests = docqa_workload(
            queries,
            session_rate=100.0,
            questions_per_session=4,
            intra_session_gap=0.001,
            seed=7,
        )
        return corpus, requests

    def test_stream_is_sorted_and_session_shaped(self):
        _, requests = self._stream()
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert len(requests) == 16  # ceil(16 / 4) sessions x 4 questions

    def test_requests_feed_form_batches_directly(self):
        _, requests = self._stream()
        batches = form_batches(
            requests, BatchConfig(max_batch_size=4, max_wait=0.05)
        )
        batched = [item for batch in batches for item in batch.items]
        assert sorted(r.arrival for r in batched) == [
            r.arrival for r in requests
        ]
        assert all(isinstance(item, DocqaRequest) for item in batched)

    def test_serving_adapter_counts_nonpad_words(self):
        _, requests = self._stream()
        workload = to_serving_workload(requests)
        assert len(workload.requests) == len(requests)
        for docqa, serving in zip(requests, workload.requests):
            assert serving.arrival == docqa.arrival
            assert serving.words == int(
                np.count_nonzero(docqa.query.words != 0)
            )

    def test_cluster_adapter_maps_doc_spans_to_chunks(self):
        corpus, requests = self._stream()
        cluster = to_cluster_requests(requests, corpus, chunk_size=4)
        for docqa, request in zip(requests, cluster):
            assert request.topic == docqa.query.doc_id
            start, stop = corpus.row_range(docqa.query.doc_id)
            assert request.chunks == row_span_chunks(start, stop, chunk_size=4)
            # Every supporting row's chunk is in the planned set.
            for row in docqa.query.supporting_rows:
                assert row // 4 in request.chunks

    def test_row_span_chunks_grid(self):
        assert row_span_chunks(0, 8, chunk_size=4) == (0, 1)
        assert row_span_chunks(7, 9, chunk_size=4) == (1, 2)
        assert row_span_chunks(4, 5, chunk_size=4) == (1,)
        with pytest.raises(ValueError):
            row_span_chunks(5, 5, chunk_size=4)
        with pytest.raises(ValueError):
            row_span_chunks(0, 4, chunk_size=0)
