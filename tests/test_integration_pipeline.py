"""Full-pipeline integration: generate -> train -> save -> load ->
export -> serve with every optimization and the embedding cache.

One test that walks the complete deployment story a downstream user
would follow, asserting cross-module invariants at each step.
"""

import numpy as np

from repro.core import EngineConfig, MnnFastEngine
from repro.core.config import EmbeddingCacheConfig
from repro.data import build_vocabulary, generate_task, vectorize
from repro.memsim import EmbeddingCache
from repro.model import (
    MemN2N,
    MemN2NConfig,
    Trainer,
    load_engine_weights,
    load_model,
    save_engine_weights,
    save_model,
    to_engine_config,
    to_engine_weights,
)

MAX_WORDS, MAX_SENTENCES = 10, 16


def test_full_pipeline(tmp_path, rng):
    # 1. Data: synthetic bAbI task 1.
    train = generate_task(1, 250, seed=0)
    vocab = build_vocabulary(train)
    stories, questions, answers = vectorize(train, vocab, MAX_WORDS, MAX_SENTENCES)

    # 2. Train a one-hop exportable model.
    model = MemN2N(
        MemN2NConfig(
            vocab_size=len(vocab), embedding_dim=20, hops=1,
            max_sentences=MAX_SENTENCES, max_words=MAX_WORDS,
            use_temporal_encoding=False,
        ),
        rng=np.random.default_rng(1),
    )
    trainer = Trainer(model, rng=np.random.default_rng(2))
    losses = trainer.fit(stories, questions, answers, epochs=25)
    assert losses[-1] < losses[0]
    accuracy = trainer.accuracy(stories, questions, answers)
    assert accuracy > 0.7

    # 3. Persist and restore: identical behaviour.
    model_path = tmp_path / "model.npz"
    save_model(model, model_path)
    restored = load_model(model_path)
    np.testing.assert_allclose(
        restored.forward(stories[:4], questions[:4]).logits,
        model.forward(stories[:4], questions[:4]).logits,
    )

    # 4. Export to engine weights, persist those too.
    weights = to_engine_weights(restored)
    weights_path = tmp_path / "weights.npz"
    save_engine_weights(weights, weights_path)
    weights = load_engine_weights(weights_path)

    # 5. Serve a fresh story with full MnnFast + the embedding cache.
    example = generate_task(1, 1, seed=99)[0]
    story_ids = np.stack(
        [vocab.encode(s, width=MAX_WORDS) for s in example.story]
    )
    question_ids = vocab.encode(example.question, width=MAX_WORDS)[None, :]

    cache = EmbeddingCache(
        EmbeddingCacheConfig(size_bytes=8 * 1024, embedding_dim=20)
    )
    engine = MnnFastEngine(
        to_engine_config(restored, num_sentences=len(example.story)),
        weights,
        engine_config=EngineConfig.mnnfast(chunk_size=4, threshold=1e-6),
        use_position_encoding=True,
    )
    engine.store_story(story_ids)

    cold = engine.answer(question_ids, cache=cache)
    warm = engine.answer(question_ids, cache=cache)

    # The cache warms up without changing the answer.
    assert cold.cache_misses > 0
    assert warm.cache_misses == 0
    np.testing.assert_allclose(warm.logits, cold.logits)

    # The served answer equals the trained model's own prediction.
    model_answer = restored.predict(story_ids[None], question_ids)[0]
    assert warm.answer_ids[0] == model_answer

    # MnnFast did strictly less weighted-sum work than the dense pass.
    assert warm.stats.rows_skipped >= 0
    assert warm.stats.divisions == engine.config.embedding_dim
