"""Cross-check of the two prefetchers' accounting.

The repo has two prefetch models that must agree on *definitions*:

* :class:`repro.store.ChunkPrefetcher` — the *executed* software
  pipeline: it knows the column kernel's chunk schedule, so it issues
  every fetch ahead of demand (coverage 1.0 from the first chunk).
* :class:`repro.memsim.prefetcher.StridePrefetcher` — the *modeled*
  hardware stride detector: it must first observe a stable stride, so
  a sequential stream pays a warmup of uncovered accesses before
  prefetching starts.

Shared definition (``StoreStats.prefetch_coverage`` documents it): an
access is **covered** when a prefetch for it was *issued* before the
demand access — deliberately timing-independent, unlike hit-vs-late.
This suite drives both prefetchers over the same sequential chunk
stream and checks each one's ledger is complete and consistent under
that definition, and that the executed pipeline's zero-warmup coverage
is exactly the advantage the paper's explicit double-buffering has
over generic hardware prefetching (the ``bench_ablation_*`` story).
"""

import numpy as np
import pytest

from repro.memsim.prefetcher import StridePrefetcher
from repro.store import ChunkPrefetcher, MmapStore, ResidentStore, StoreStats
from repro.store.base import iter_chunk_spans

NS, ED = 640, 16
CHUNK = 64
NUM_CHUNKS = NS // CHUNK


@pytest.fixture
def store(tmp_path):
    rng = np.random.default_rng(11)
    return MmapStore.save(
        tmp_path / "store",
        rng.normal(size=(NS, ED)),
        rng.normal(size=(NS, ED)),
    )


def modeled_coverage(prefetcher: StridePrefetcher, accesses: list[int]):
    """(covered, total) for a demand stream under the shared definition:
    an access is covered iff a prefetch for that line was issued by an
    *earlier* observation."""
    issued: set[int] = set()
    covered = 0
    for line in accesses:
        if line in issued:
            covered += 1
        issued.update(prefetcher.observe(line))
    return covered, len(accesses)


class TestSharedCoverageDefinition:
    def test_executed_pipeline_has_zero_warmup(self, store):
        pipeline = ChunkPrefetcher(store, chunk_size=CHUNK, prefetch_depth=2)
        list(pipeline.chunks())
        stats = pipeline.stats
        # The software pipeline knows the schedule: every chunk's fetch
        # is issued before the kernel demands it, from chunk 0 on.
        assert stats.chunks_served == NUM_CHUNKS
        assert stats.prefetch_coverage == 1.0

    def test_modeled_prefetcher_pays_stream_detection_warmup(self):
        prefetcher = StridePrefetcher(
            degree=4, distance=1, trigger_confidence=2
        )
        accesses = list(range(NUM_CHUNKS))  # the same sequential stream
        covered, total = modeled_coverage(prefetcher, accesses)
        # The stride detector needs trigger_confidence same-stride
        # observations after the first (learning) access before it
        # issues anything, so exactly that prefix goes uncovered.
        warmup = prefetcher.trigger_confidence + 1
        assert total == NUM_CHUNKS
        assert covered == NUM_CHUNKS - warmup
        assert 0.0 < covered / total < 1.0

    def test_executed_beats_modeled_on_the_same_stream(self, store):
        pipeline = ChunkPrefetcher(store, chunk_size=CHUNK, prefetch_depth=1)
        list(pipeline.chunks())
        prefetcher = StridePrefetcher(
            degree=4, distance=1, trigger_confidence=2
        )
        covered, total = modeled_coverage(
            prefetcher, list(range(NUM_CHUNKS))
        )
        # Same stream, same definition: explicit double-buffering covers
        # strictly more than stride detection (the §3.1 argument for
        # software prefetch on accelerators without a stride engine).
        assert pipeline.stats.prefetch_coverage > covered / total

    def test_disabled_prefetch_covers_nothing(self, store):
        pipeline = ChunkPrefetcher(store, chunk_size=CHUNK)
        list(pipeline.chunks())
        assert pipeline.stats.prefetch_coverage == 0.0
        assert pipeline.stats.prefetch_hit_rate == 0.0


class TestLedgerCompleteness:
    @pytest.mark.parametrize("prefetch_depth", [0, 1, 3])
    def test_every_served_chunk_is_classified(self, store, prefetch_depth):
        pipeline = ChunkPrefetcher(
            store, chunk_size=CHUNK, prefetch_depth=prefetch_depth
        )
        list(pipeline.chunks())
        stats = pipeline.stats
        # hit + late + demand partitions the served chunks exactly.
        assert (
            stats.prefetch_hits + stats.prefetch_late + stats.demand_fetches
            == stats.chunks_served
        )
        assert stats.bytes_served == stats.ram_bytes + stats.disk_bytes
        assert stats.bytes_served == 2 * NS * ED * 8

    def test_modeled_ledger_is_complete(self):
        prefetcher = StridePrefetcher(degree=2, distance=1)
        accesses = list(range(NUM_CHUNKS))
        covered, total = modeled_coverage(prefetcher, accesses)
        assert prefetcher.stats.observations == total
        assert 0 <= covered <= total

    def test_stats_addition_matches_two_pipelines(self, store):
        a = ChunkPrefetcher(store, chunk_size=CHUNK, prefetch_depth=2)
        b = ChunkPrefetcher(store, chunk_size=CHUNK)
        list(a.chunks())
        list(b.chunks())
        total = a.stats + b.stats
        assert total.chunks_served == 2 * NUM_CHUNKS
        assert total.bytes_served == a.stats.bytes_served + b.stats.bytes_served
        assert total.prefetch_coverage == pytest.approx(0.5)

    def test_resident_store_bytes_are_ram(self):
        rng = np.random.default_rng(0)
        store = ResidentStore(
            rng.normal(size=(NS, ED)), rng.normal(size=(NS, ED))
        )
        pipeline = ChunkPrefetcher(store, chunk_size=CHUNK)
        list(pipeline.chunks())
        assert pipeline.stats.disk_bytes == 0
        assert pipeline.stats.ram_bytes == 2 * NS * ED * 8

    def test_empty_stats_rates_are_zero(self):
        stats = StoreStats()
        assert stats.prefetch_coverage == 0.0
        assert stats.prefetch_hit_rate == 0.0

    def test_spans_cover_the_store_exactly(self):
        spans = list(iter_chunk_spans(NS, CHUNK))
        assert spans[0][0] == 0 and spans[-1][1] == NS
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
