"""Rule-based re-derivation tests for the remaining bAbI task families.

Complements test_data_babi.py: every task family's answers must be
independently derivable from its stories, so generator bugs cannot
produce unanswerable or mislabeled data.
"""

import pytest

from repro.data import generate_task
from repro.data.babi import (
    DROP_VERBS,
    GRAB_VERBS,
    MOVE_VERBS,
    SCALABLE_TASKS,
    generate_example,
)
import numpy as np


class TestTask4Relations:
    def test_answer_matches_the_stated_fact(self):
        for example in generate_task(4, 40, seed=11):
            subject = example.story[0][1]      # "the X is d of the Y"
            direction = example.story[0][3]
            anchor = example.story[0][-1]
            if example.question[0] == "what" and example.question[1] == "is":
                if example.question[2] == direction:
                    # "what is d of the Y" -> X
                    assert example.answer == subject
                else:
                    # "what is the X d of" -> Y
                    assert example.answer == anchor


class TestTask5ThreeArgs:
    def test_answer_is_a_participant_of_a_matching_event(self):
        for example in generate_task(5, 50, seed=11):
            events = [
                (s[0], s[3], s[-1]) for s in example.story
            ]  # giver, object, receiver
            question = " ".join(example.question)
            matched = False
            for giver, obj, receiver in events:
                if question.startswith("who gave"):
                    if obj in question and receiver == example.question[-1]:
                        matched = matched or example.answer == giver
                elif question.startswith("what did"):
                    if giver == example.question[2] and receiver == example.question[-1]:
                        matched = matched or example.answer == obj
                else:  # who did X give the O to
                    if giver == example.question[2] and obj in question:
                        matched = matched or example.answer == receiver
            assert matched

    def test_answer_is_last_matching_event(self):
        for example in generate_task(5, 50, seed=12):
            # The supporting fact must be the *latest* event matching
            # the question's fixed arguments.
            support = example.supporting[0]
            fact = example.story[support]
            question = " ".join(example.question)
            for later in range(support + 1, len(example.story)):
                giver, obj, receiver = (
                    example.story[later][0],
                    example.story[later][3],
                    example.story[later][-1],
                )
                if question.startswith("who gave"):
                    assert not (obj in question and receiver == example.question[-1])
                elif question.startswith("what did"):
                    assert not (
                        giver == example.question[2]
                        and receiver == example.question[-1]
                    )
                else:
                    assert not (giver == example.question[2] and obj in question)
            del fact


class TestTask8Lists:
    def test_carried_set_matches_events(self):
        for example in generate_task(8, 40, seed=11):
            actor = example.question[2]
            held = set()
            for s in example.story:
                if s[0] != actor:
                    continue
                text = " ".join(s)
                if any(f" {v} the " in f" {text} " for v in GRAB_VERBS):
                    held.add(s[-1])
                elif any(f" {v} the " in f" {text} " for v in DROP_VERBS):
                    held.discard(s[-1])
            expected = ",".join(sorted(held)) if held else "nothing"
            assert example.answer == expected


class TestTask9Negation:
    def test_answer_reflects_latest_statement(self):
        for example in generate_task(9, 40, seed=11):
            actor, location = example.question[1], example.question[-1]
            verdict = None
            for s in example.story:
                if s[0] != actor:
                    continue
                if s[1] == "is" and s[2] == "no":
                    # "X is no longer in the L"
                    if s[-1] == location:
                        verdict = "no"
                elif s[1] == "is":
                    verdict = "yes" if s[-1] == location else "no"
            assert example.answer == verdict


class TestTask10Indefinite:
    def test_maybe_only_for_mentioned_alternatives(self):
        for example in generate_task(10, 60, seed=11):
            actor, location = example.question[1], example.question[-1]
            state: tuple[str, ...] = ()
            for s in example.story:
                if s[0] != actor:
                    continue
                if "either" in s:
                    state = (s[-4], s[-1])  # "... the A or the B"
                else:
                    state = (s[-1],)
            if example.answer == "maybe":
                assert len(state) == 2 and location in state
            elif example.answer == "yes":
                assert state == (location,)
            else:
                assert location not in state


class TestCoreferenceTasks:
    def test_task11_pronoun_resolves_to_named_actor(self):
        for example in generate_task(11, 40, seed=11):
            actor = example.question[-1]
            # The last two sentences are the named move + pronoun move.
            named, pronoun = example.story[-2], example.story[-1]
            assert named[0] == actor
            assert pronoun[0] == "afterwards"
            assert example.answer == pronoun[-1]

    def test_task13_they_refers_to_the_pair(self):
        for example in generate_task(13, 40, seed=11):
            pair_sentence, they_sentence = example.story[-2], example.story[-1]
            actor = example.question[-1]
            assert actor in (pair_sentence[0], pair_sentence[2])
            assert they_sentence[1] == "they"
            assert example.answer == they_sentence[-1]


class TestTask14Time:
    def test_answer_matches_asked_slot(self):
        for example in generate_task(14, 40, seed=11):
            question = " ".join(example.question)
            for s in example.story:
                slot = s[0] if s[0] == "yesterday" else f"{s[0]} {s[1]}"
                if slot in question:
                    assert example.answer == s[-1]
                    break
            else:
                pytest.fail("asked time slot not found in story")


class TestTask16Induction:
    def test_color_induced_from_same_species_witness(self):
        for example in generate_task(16, 40, seed=11):
            target = example.question[-1]
            species = next(
                s[-1] for s in example.story if s[0] == target and s[1] == "is"
            )
            witness_color = None
            witness = None
            for s in example.story:
                if s[0] != target and s[-1] == species:
                    witness = s[0]
            assert witness is not None
            for s in example.story:
                if s[0] == witness and s[1] == "is" and s[2] != "a":
                    witness_color = s[-1]
            assert example.answer == witness_color


class TestStoryScale:
    @pytest.mark.parametrize("task_id", sorted(SCALABLE_TASKS))
    def test_scale_stretches_stories(self, task_id):
        short = generate_task(task_id, 20, seed=2, story_scale=1.0)
        long = generate_task(task_id, 20, seed=2, story_scale=4.0)
        mean_short = np.mean([e.num_sentences for e in short])
        mean_long = np.mean([e.num_sentences for e in long])
        assert mean_long > 2.5 * mean_short

    @pytest.mark.parametrize("task_id", sorted(SCALABLE_TASKS))
    def test_scaled_stories_still_answerable(self, task_id):
        for example in generate_task(task_id, 15, seed=3, story_scale=4.0):
            assert example.answer
            assert all(0 <= i < len(example.story) for i in example.supporting)

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            generate_example(1, np.random.default_rng(0), story_scale=0.0)

    def test_unscalable_tasks_unaffected(self):
        a = generate_task(15, 10, seed=4, story_scale=1.0)
        b = generate_task(15, 10, seed=4, story_scale=4.0)
        assert [e.story for e in a] == [e.story for e in b]
